package registry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/lgp"
	"temporaldoc/internal/reuters"
	"temporaldoc/internal/telemetry"
)

// --- shared fixture: one tiny trained snapshot, reused everywhere ---
//
// Registry tests need real snapshot bytes (loads go through
// core.LoadFile, which rebuilds the full model), but they never need
// more than one: distinct (model, version) keys can share identical
// content, and content-distinct versions are made by re-saving with a
// trailing newline.

type regFixture struct {
	corpus *corpus.Corpus
	model  *core.Model
	path   string // the trained snapshot file
	hash   string
	bytes  int64
	// pathAlt is the same model with one byte of trailing whitespace:
	// same predictions, different snapshot hash.
	pathAlt string
	hashAlt string
}

var (
	regFixOnce sync.Once
	regFix     *regFixture
	regFixErr  error
)

func buildRegFixture() (*regFixture, error) {
	gen := reuters.DefaultGenConfig()
	gen.Scale = 0.008
	gen.Seed = 11
	c, err := reuters.GenerateCorpus(gen)
	if err != nil {
		return nil, err
	}
	gp := lgp.DefaultConfig()
	gp.PopulationSize = 20
	gp.Tournaments = 300
	gp.MaxPages = 4
	gp.MaxPageSize = 4
	gp.DSS = &lgp.DSSConfig{SubsetSize: 20, Interval: 25}
	cfg := core.Config{
		FeatureMethod: featsel.DF,
		FeatureConfig: featsel.Config{GlobalN: 60, PerCategoryN: 25},
		Encoder: hsom.Config{
			CharWidth: 5, CharHeight: 5,
			WordWidth: 4, WordHeight: 4,
			CharEpochs: 2, WordEpochs: 3,
			BMUFanout: 3,
			Seed:      6,
		},
		GP:       gp,
		Restarts: 1,
		Seed:     5,
	}
	m, err := core.Train(cfg, c)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "registry-fixture")
	if err != nil {
		return nil, err
	}
	f := &regFixture{corpus: c, path: filepath.Join(dir, "snap.json"), pathAlt: filepath.Join(dir, "snap-alt.json")}
	out, err := os.Create(f.path)
	if err != nil {
		return nil, err
	}
	if err := m.Save(out); err != nil {
		out.Close()
		return nil, err
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	// Reload from disk so the reference model is exactly the persisted
	// one, and record the snapshot identity.
	lm, info, err := core.LoadFile(f.path)
	if err != nil {
		return nil, err
	}
	f.model, f.hash, f.bytes = lm, info.SHA256, info.Bytes
	// The alt snapshot: identical JSON plus trailing whitespace — loads
	// to the same model but hashes differently.
	b, err := os.ReadFile(f.path)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(f.pathAlt, append(b, '\n'), 0o644); err != nil {
		return nil, err
	}
	if _, altInfo, err := core.LoadFile(f.pathAlt); err != nil {
		return nil, fmt.Errorf("alt snapshot does not load: %w", err)
	} else if altInfo.SHA256 == f.hash {
		return nil, fmt.Errorf("alt snapshot hash did not change")
	} else {
		f.hashAlt = altInfo.SHA256
	}
	return f, nil
}

func getRegFixture(t *testing.T) *regFixture {
	t.Helper()
	regFixOnce.Do(func() { regFix, regFixErr = buildRegFixture() })
	if regFixErr != nil {
		t.Fatalf("fixture: %v", regFixErr)
	}
	return regFix
}

// stamp returns a deterministic publish timestamp n steps after a
// fixed epoch, so version ordering in tests never depends on the
// wall clock.
func stamp(n int) time.Time {
	return time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC).Add(time.Duration(n) * time.Minute)
}

func mustPublish(t *testing.T, root, model, version, src string, opts PublishOptions) Manifest {
	t.Helper()
	man, err := Publish(root, model, version, src, opts)
	if err != nil {
		t.Fatalf("publish %s/%s: %v", model, version, err)
	}
	return man
}

func openReg(t *testing.T, root string, mod func(*Config)) *Registry {
	t.Helper()
	cfg := Config{Root: root, Metrics: telemetry.NewRegistry()}
	if mod != nil {
		mod(&cfg)
	}
	r, err := Open(cfg)
	if err != nil {
		t.Fatalf("registry.Open: %v", err)
	}
	return r
}

// residentNames renders the resident versions as "model/version"
// strings, sorted by Models' deterministic order.
func residentNames(r *Registry) []string {
	var out []string
	for _, m := range r.Models() {
		for _, v := range m.Versions {
			if v.Resident {
				out = append(out, m.Name+"/"+v.Version)
			}
		}
	}
	return out
}

func counter(r *Registry, name string) int64 {
	return r.cfg.Metrics.Counter(name).Value()
}

// --- publish + scan ---

func TestPublishAndScan(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	mustPublish(t, root, "earn", "v1", f.path, PublishOptions{CreatedAt: stamp(0)})
	mustPublish(t, root, "earn", "v2", f.pathAlt, PublishOptions{CreatedAt: stamp(1), Kernel: "float32"})
	mustPublish(t, root, "acq", "v1", f.path, PublishOptions{CreatedAt: stamp(2)})

	r := openReg(t, root, nil)
	models := r.Models()
	if len(models) != 2 {
		t.Fatalf("models = %d, want 2: %+v", len(models), models)
	}
	// Sorted by name: acq before earn.
	if models[0].Name != "acq" || models[1].Name != "earn" {
		t.Fatalf("model order %q, %q; want acq, earn", models[0].Name, models[1].Name)
	}
	earn := models[1]
	if len(earn.Versions) != 2 {
		t.Fatalf("earn versions = %d, want 2", len(earn.Versions))
	}
	if earn.Versions[0].Version != "v1" || earn.Versions[0].Latest {
		t.Errorf("earn v1 = %+v, want oldest and not latest", earn.Versions[0])
	}
	if earn.Versions[1].Version != "v2" || !earn.Versions[1].Latest {
		t.Errorf("earn v2 = %+v, want latest", earn.Versions[1])
	}
	if earn.Versions[1].Kernel != "float32" {
		t.Errorf("earn v2 kernel %q, want float32", earn.Versions[1].Kernel)
	}
	if earn.Versions[0].SHA256 != f.hash || earn.Versions[1].SHA256 != f.hashAlt {
		t.Errorf("hashes %q/%q, want %q/%q",
			earn.Versions[0].SHA256, earn.Versions[1].SHA256, f.hash, f.hashAlt)
	}
	for _, v := range append(earn.Versions, models[0].Versions...) {
		if v.Resident {
			t.Errorf("%s marked resident before any Acquire", v.Version)
		}
	}
}

func TestPublishRejects(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	ok := PublishOptions{CreatedAt: stamp(0)}
	cases := []struct {
		name                string
		model, version, src string
		opts                PublishOptions
	}{
		{"dotdot model", "..", "v1", f.path, ok},
		{"separator in model", "a/b", "v1", f.path, ok},
		{"leading dot", ".hidden", "v1", f.path, ok},
		{"empty version", "m", "", f.path, ok},
		{"overlong name", strings.Repeat("x", 65), "v1", f.path, ok},
		{"zero created-at", "m", "v1", f.path, PublishOptions{}},
		{"bad kernel", "m", "v1", f.path, PublishOptions{CreatedAt: stamp(0), Kernel: "turbo"}},
		{"method mismatch", "m", "v1", f.path, PublishOptions{CreatedAt: stamp(0), Method: featsel.MI}},
		{"missing source", "m", "v1", filepath.Join(root, "nope.json"), ok},
	}
	for _, c := range cases {
		if _, err := Publish(root, c.model, c.version, c.src, c.opts); err == nil {
			t.Errorf("%s: publish succeeded", c.name)
		}
	}
	// Not-a-snapshot source.
	garbage := filepath.Join(root, "garbage.json")
	if err := os.WriteFile(garbage, []byte(`{"hello":"world"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Publish(root, "m", "v1", garbage, ok); err == nil {
		t.Error("non-snapshot source published")
	}
	// Versions are immutable.
	mustPublish(t, root, "m", "v1", f.path, ok)
	if _, err := Publish(root, "m", "v1", f.path, PublishOptions{CreatedAt: stamp(1)}); err == nil {
		t.Error("republish over an existing version succeeded")
	}
	// Nothing above may have left a visible half-version behind.
	r := openReg(t, root, nil)
	if got := r.Models(); len(got) != 1 || len(got[0].Versions) != 1 {
		t.Errorf("registry after failed publishes = %+v, want just m/v1", got)
	}
}

func TestScanSkipsInvalidVersions(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	mustPublish(t, root, "earn", "good", f.path, PublishOptions{CreatedAt: stamp(0)})

	// Corrupt manifest: truncated JSON.
	badManifest := filepath.Join(root, "earn", "badman")
	if err := os.MkdirAll(badManifest, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(badManifest, "manifest.json"), []byte(`{"model": "earn"`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncated snapshot: manifest fine, snapshot.bin shorter than it
	// says (the manifest is the good version's with the name rewritten).
	short := filepath.Join(root, "earn", "short")
	if err := os.MkdirAll(short, 0o755); err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(filepath.Join(root, "earn", "good", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	mb = []byte(strings.ReplaceAll(string(mb), `"good"`, `"short"`))
	if err := os.WriteFile(filepath.Join(short, "manifest.json"), mb, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(short, "snapshot.bin"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Location mismatch: a valid version directory copied under the
	// wrong name.
	moved := filepath.Join(root, "earn", "moved")
	if err := os.MkdirAll(moved, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"manifest.json", "snapshot.bin"} {
		b, err := os.ReadFile(filepath.Join(root, "earn", "good", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(moved, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A crashed publish's leftover temp dir, and a stray file in the root.
	tempDir := filepath.Join(root, "earn", ".tmp-crashed-123")
	if err := os.MkdirAll(tempDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "README.txt"), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := openReg(t, root, nil)
	stats, err := r.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if stats.Models != 1 || stats.Versions != 1 {
		t.Errorf("scan accepted %d models / %d versions, want 1/1", stats.Models, stats.Versions)
	}
	if stats.Skipped != 3 {
		t.Errorf("scan skipped %d, want 3 (bad manifest, short snapshot, location mismatch)", stats.Skipped)
	}
	if stats.TempDirs != 1 {
		t.Errorf("scan temp dirs %d, want 1", stats.TempDirs)
	}
	// The temp dir must survive the scan: an external publisher may
	// still be writing into it.
	if _, err := os.Stat(tempDir); err != nil {
		t.Errorf("scan removed the in-progress publish dir: %v", err)
	}
	// Skips are counted, never fatal: the good version still serves.
	snap, err := r.Acquire(context.Background(), "earn", "good")
	if err != nil {
		t.Fatalf("Acquire good version after skips: %v", err)
	}
	if snap.Info.SHA256 != f.hash {
		t.Errorf("served hash %q, want %q", snap.Info.SHA256, f.hash)
	}
	if got := counter(r, "registry.scan.skipped"); got < 3 {
		t.Errorf("registry.scan.skipped = %d, want >= 3", got)
	}
	if got := counter(r, "registry.scan.tempdirs"); got < 1 {
		t.Errorf("registry.scan.tempdirs = %d, want >= 1", got)
	}
}

func TestManifestValidation(t *testing.T) {
	for _, name := range []string{"earn", "a.b-c_d", "V1", strings.Repeat("x", 64)} {
		if err := ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", name, err)
		}
	}
	for _, name := range []string{"", ".", "..", ".hid", "a/b", `a\b`, "a b", "ü", strings.Repeat("x", 65)} {
		if err := ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) accepted", name)
		}
	}

	valid := Manifest{
		Model: "earn", Version: "v1",
		SHA256:        strings.Repeat("ab", 32),
		Bytes:         10,
		FeatureMethod: "df",
		CreatedAt:     stamp(0),
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	mutate := func(f func(*Manifest)) *Manifest { m := valid; f(&m); return &m }
	bad := map[string]*Manifest{
		"traversal model": mutate(func(m *Manifest) { m.Model = "../../etc" }),
		"uppercase sha":   mutate(func(m *Manifest) { m.SHA256 = strings.Repeat("AB", 32) }),
		"short sha":       mutate(func(m *Manifest) { m.SHA256 = "abcd" }),
		"zero bytes":      mutate(func(m *Manifest) { m.Bytes = 0 }),
		"bad method":      mutate(func(m *Manifest) { m.FeatureMethod = "tfidf" }),
		"bad kernel":      mutate(func(m *Manifest) { m.Kernel = "turbo" }),
		"zero created-at": mutate(func(m *Manifest) { m.CreatedAt = time.Time{} }),
	}
	for name, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: manifest accepted", name)
		}
	}

	// DecodeManifest: the byte-level gate.
	if _, err := DecodeManifest(strings.NewReader(`{"model": "earn"`)); err == nil {
		t.Error("truncated manifest accepted")
	}
	if _, err := DecodeManifest(strings.NewReader(`{"model": "earn", "surprise": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	good := fmt.Sprintf(`{"model":"earn","version":"v1","sha256":%q,"bytes":10,"feature_method":"df","created_at":"2024-03-01T12:00:00Z"}`,
		strings.Repeat("ab", 32))
	if _, err := DecodeManifest(strings.NewReader(good)); err != nil {
		t.Errorf("good manifest rejected: %v", err)
	}
	if _, err := DecodeManifest(strings.NewReader(good + `{"model":"x"}`)); err == nil {
		t.Error("trailing data accepted")
	}
	// The read cap truncates oversized manifests mid-value, so they fail
	// to decode instead of being slurped into memory.
	huge := `{"model":"` + strings.Repeat("x", maxManifestBytes) + `","version":"v1"}`
	if _, err := DecodeManifest(strings.NewReader(huge)); err == nil {
		t.Error("oversized manifest accepted")
	}
}

// --- acquire: defaults, resolution, errors ---

func TestAcquireResolution(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	mustPublish(t, root, "earn", "v1", f.path, PublishOptions{CreatedAt: stamp(0)})
	mustPublish(t, root, "earn", "v2", f.pathAlt, PublishOptions{CreatedAt: stamp(1)})
	ctx := context.Background()

	r := openReg(t, root, nil)
	// Sole model is the implicit default; empty version takes the latest.
	snap, err := r.Acquire(ctx, "", "")
	if err != nil {
		t.Fatalf("Acquire default: %v", err)
	}
	if snap.Name != "earn" || snap.Version != "v2" || snap.Info.SHA256 != f.hashAlt {
		t.Errorf("default resolved to %s/%s (%s), want earn/v2 (%s)", snap.Name, snap.Version, snap.Info.SHA256, f.hashAlt)
	}
	// Explicit older version still serves.
	snap, err = r.Acquire(ctx, "earn", "v1")
	if err != nil {
		t.Fatalf("Acquire earn/v1: %v", err)
	}
	if snap.Version != "v1" || snap.Info.SHA256 != f.hash {
		t.Errorf("earn/v1 resolved to %s (%s), want v1 (%s)", snap.Version, snap.Info.SHA256, f.hash)
	}
	// Unknown names map to the sentinels.
	if _, err := r.Acquire(ctx, "nope", ""); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model error = %v, want ErrUnknownModel", err)
	}
	if _, err := r.Acquire(ctx, "earn", "v9"); !errors.Is(err, ErrUnknownVersion) {
		t.Errorf("unknown version error = %v, want ErrUnknownVersion", err)
	}

	// Two models, no configured default: unnamed requests must name one.
	mustPublish(t, root, "acq", "v1", f.path, PublishOptions{CreatedAt: stamp(2)})
	r2 := openReg(t, root, nil)
	if _, err := r2.Acquire(ctx, "", ""); !errors.Is(err, ErrModelRequired) {
		t.Errorf("ambiguous default error = %v, want ErrModelRequired", err)
	}
	if _, ok := r2.Default(); ok {
		t.Error("Default() ok with two models and no configured default")
	}
	// A configured default disambiguates.
	r3 := openReg(t, root, func(c *Config) { c.Default = "acq" })
	snap, err = r3.Acquire(ctx, "", "")
	if err != nil {
		t.Fatalf("Acquire with configured default: %v", err)
	}
	if snap.Name != "acq" {
		t.Errorf("configured default resolved to %q, want acq", snap.Name)
	}
	model, version, sha, ok := r3.DefaultVersionInfo()
	if !ok || model != "acq" || version != "v1" || sha != f.hash {
		t.Errorf("DefaultVersionInfo = %q/%q/%q/%v, want acq/v1/%s/true", model, version, sha, ok, f.hash)
	}
	// A configured default that is not published is an error at Acquire.
	r4 := openReg(t, root, func(c *Config) { c.Default = "ghost" })
	if _, err := r4.Acquire(ctx, "", ""); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("missing configured default error = %v, want ErrUnknownModel", err)
	}
}

// --- single-flight ---

func TestAcquireSingleFlightStampede(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	mustPublish(t, root, "earn", "v1", f.path, PublishOptions{CreatedAt: stamp(0)})
	r := openReg(t, root, nil)

	// Gate the loader so every stampeding goroutine is in Acquire before
	// the one real load can finish.
	release := make(chan struct{})
	var loads atomic.Int64
	orig := r.loader
	r.loader = func(path string) (*core.Model, core.SnapshotInfo, error) {
		loads.Add(1)
		<-release
		return orig(path)
	}

	const stampede = 32
	var wg sync.WaitGroup
	var entered sync.WaitGroup
	snaps := make([]*Snapshot, stampede)
	errs := make([]error, stampede)
	for i := 0; i < stampede; i++ {
		wg.Add(1)
		entered.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Done()
			snaps[i], errs[i] = r.Acquire(context.Background(), "earn", "")
		}(i)
	}
	entered.Wait()
	close(release)
	wg.Wait()

	if got := loads.Load(); got != 1 {
		t.Fatalf("%d concurrent cold Acquires performed %d loads, want exactly 1", stampede, got)
	}
	for i := range snaps {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if snaps[i] != snaps[0] {
			t.Fatalf("goroutine %d got a different snapshot pointer", i)
		}
	}
	// Every non-loading goroutine either coalesced onto the in-flight
	// load or hit the already-resident entry.
	hits := counter(r, "registry.hits")
	coalesced := counter(r, "registry.singleflight.coalesced")
	if hits+coalesced != stampede-1 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want %d", hits, coalesced, hits+coalesced, stampede-1)
	}
	if got := counter(r, "registry.loads"); got != 1 {
		t.Errorf("registry.loads = %d, want 1", got)
	}
}

func TestAcquireLoadFailureRetries(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	mustPublish(t, root, "earn", "v1", f.path, PublishOptions{CreatedAt: stamp(0)})
	r := openReg(t, root, nil)

	boom := errors.New("disk on fire")
	failures := 1
	orig := r.loader
	r.loader = func(path string) (*core.Model, core.SnapshotInfo, error) {
		if failures > 0 {
			failures--
			return nil, core.SnapshotInfo{}, boom
		}
		return orig(path)
	}
	ctx := context.Background()
	if _, err := r.Acquire(ctx, "earn", ""); !errors.Is(err, boom) {
		t.Fatalf("first Acquire error = %v, want the loader failure", err)
	}
	if got := counter(r, "registry.load.errors"); got != 1 {
		t.Errorf("registry.load.errors = %d, want 1", got)
	}
	// The failed entry must not linger: the next Acquire retries the load
	// and succeeds.
	snap, err := r.Acquire(ctx, "earn", "")
	if err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if snap.Info.SHA256 != f.hash {
		t.Errorf("retried load hash %q, want %q", snap.Info.SHA256, f.hash)
	}
}

func TestAcquireWaiterHonorsContext(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	mustPublish(t, root, "earn", "v1", f.path, PublishOptions{CreatedAt: stamp(0)})
	r := openReg(t, root, nil)

	started := make(chan struct{})
	release := make(chan struct{})
	orig := r.loader
	r.loader = func(path string) (*core.Model, core.SnapshotInfo, error) {
		close(started)
		<-release
		return orig(path)
	}
	loaderErr := make(chan error, 1)
	go func() {
		_, err := r.Acquire(context.Background(), "earn", "")
		loaderErr <- err
	}()
	<-started

	// A waiter whose deadline expires mid-load gets its context error,
	// not the load result.
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := r.Acquire(ctx, "earn", "")
		waiterErr <- err
	}()
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter error = %v, want context.Canceled", err)
	}
	// The load itself is unaffected.
	close(release)
	if err := <-loaderErr; err != nil {
		t.Fatalf("loading goroutine: %v", err)
	}
	if got := r.ResidentCount(); got != 1 {
		t.Errorf("resident count = %d, want 1", got)
	}
}

// --- LRU eviction ---

func TestLRUEvictionOrder(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	for _, m := range []string{"m1", "m2", "m3"} {
		mustPublish(t, root, m, "v1", f.path, PublishOptions{CreatedAt: stamp(0)})
	}
	r := openReg(t, root, func(c *Config) { c.MaxResident = 2 })
	ctx := context.Background()
	acquire := func(model string) *Snapshot {
		t.Helper()
		s, err := r.Acquire(ctx, model, "")
		if err != nil {
			t.Fatalf("Acquire %s: %v", model, err)
		}
		return s
	}

	pinned := acquire("m1")
	acquire("m2")
	acquire("m3") // bound is 2: evicts m1, the least recently acquired
	if got := residentNames(r); !reflect.DeepEqual(got, []string{"m2/v1", "m3/v1"}) {
		t.Fatalf("resident after m3 = %v, want [m2/v1 m3/v1]", got)
	}
	acquire("m2") // touch m2: m3 becomes the LRU tail
	acquire("m1") // evicts m3, not m2
	if got := residentNames(r); !reflect.DeepEqual(got, []string{"m1/v1", "m2/v1"}) {
		t.Fatalf("resident after touch+reload = %v, want [m1/v1 m2/v1]", got)
	}
	if got := counter(r, "registry.evictions"); got != 2 {
		t.Errorf("registry.evictions = %d, want 2", got)
	}

	// The snapshot pinned before its eviction keeps serving: eviction
	// drops the registry's reference, never the model under a request.
	probe := &f.corpus.Test[0]
	want, err := f.model.ClassifyDoc(probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pinned.Model.ClassifyDoc(probe, nil)
	if err != nil {
		t.Fatalf("pinned snapshot classify after eviction: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pinned snapshot predictions diverged after eviction:\n got %v\nwant %v", got, want)
	}
}

func TestResidentBytesBound(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	mustPublish(t, root, "m1", "v1", f.path, PublishOptions{CreatedAt: stamp(0)})
	mustPublish(t, root, "m2", "v1", f.path, PublishOptions{CreatedAt: stamp(1)})
	ctx := context.Background()

	// A byte budget that fits one snapshot but not two.
	r := openReg(t, root, func(c *Config) { c.MaxResidentBytes = f.bytes + f.bytes/2 })
	if _, err := r.Acquire(ctx, "m1", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire(ctx, "m2", ""); err != nil {
		t.Fatal(err)
	}
	if got := residentNames(r); !reflect.DeepEqual(got, []string{"m2/v1"}) {
		t.Fatalf("resident under byte bound = %v, want [m2/v1]", got)
	}

	// A lone model larger than the whole budget still loads and stays:
	// the cache never evicts its only entry.
	r2 := openReg(t, root, func(c *Config) { c.MaxResidentBytes = 1 })
	if _, err := r2.Acquire(ctx, "m1", ""); err != nil {
		t.Fatalf("oversized lone model refused: %v", err)
	}
	if got := r2.ResidentCount(); got != 1 {
		t.Errorf("resident count = %d, want 1 (lone oversized model keeps serving)", got)
	}
}

// --- rescan while serving ---

func TestRescanDropsVanishedVersions(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	mustPublish(t, root, "earn", "v1", f.path, PublishOptions{CreatedAt: stamp(0)})
	mustPublish(t, root, "acq", "v1", f.path, PublishOptions{CreatedAt: stamp(1)})
	r := openReg(t, root, nil)
	ctx := context.Background()

	pinned, err := r.Acquire(ctx, "earn", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(root, "earn")); err != nil {
		t.Fatal(err)
	}
	stats, err := r.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if stats.Models != 1 {
		t.Errorf("scan models = %d, want 1", stats.Models)
	}
	if _, err := r.Acquire(ctx, "earn", ""); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("vanished model error = %v, want ErrUnknownModel", err)
	}
	if got := r.ResidentCount(); got != 0 {
		t.Errorf("resident count after drop = %d, want 0", got)
	}
	// The pinned snapshot outlives the rescan.
	if _, err := pinned.Model.ClassifyDoc(&f.corpus.Test[0], nil); err != nil {
		t.Errorf("pinned snapshot classify after rescan: %v", err)
	}
	// A new publish under the vanished name is picked up by the next scan.
	mustPublish(t, root, "earn", "v2", f.pathAlt, PublishOptions{CreatedAt: stamp(2)})
	if _, err := r.Scan(); err != nil {
		t.Fatal(err)
	}
	snap, err := r.Acquire(ctx, "earn", "")
	if err != nil {
		t.Fatalf("Acquire after republish: %v", err)
	}
	if snap.Version != "v2" || snap.Info.SHA256 != f.hashAlt {
		t.Errorf("republished earn resolved to %s (%s), want v2 (%s)", snap.Version, snap.Info.SHA256, f.hashAlt)
	}
}

// TestLoadRejectsTamperedSnapshot covers the load-time integrity gate:
// a snapshot whose bytes changed after publish (hash mismatch vs the
// manifest) must not serve.
func TestLoadRejectsTamperedSnapshot(t *testing.T) {
	f := getRegFixture(t)
	root := t.TempDir()
	mustPublish(t, root, "earn", "v1", f.path, PublishOptions{CreatedAt: stamp(0)})
	// Tamper preserving size, so the scan's cheap stat check passes and
	// only the load-time hash comparison can catch it. Swapping one raw
	// whitespace byte keeps the JSON (and the loaded model) identical
	// while changing the file hash — raw newlines are always structural
	// in JSON, never string content.
	p := filepath.Join(root, "earn", "v1", "snapshot.bin")
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.LastIndexByte(b, '\n')
	if i < 0 {
		i = bytes.LastIndexByte(b, ' ')
	}
	if i < 0 {
		t.Skip("snapshot has no whitespace byte to flip; update the tamper")
	}
	b[i] = '\t'
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r := openReg(t, root, nil)
	_, err = r.Acquire(context.Background(), "earn", "")
	if err == nil || !strings.Contains(err.Error(), "sha256") {
		t.Fatalf("tampered snapshot error = %v, want a sha256 mismatch", err)
	}
}
