package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"temporaldoc/internal/core"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
)

// PublishOptions parameterises one Publish call.
type PublishOptions struct {
	// CreatedAt stamps the manifest and orders versions; it must be set
	// by the caller (the registry itself never reads the clock at
	// publish time, so tests and replays stay deterministic).
	CreatedAt time.Time
	// Kernel, when non-empty, is recorded in the manifest and overrides
	// the serving default for this version.
	Kernel string
	// Method, when non-empty, requires the snapshot header to record
	// exactly this feature-selection method.
	Method featsel.Method
}

// Publish copies the snapshot at srcPath into the registry as
// <root>/<model>/<version> with a freshly stamped manifest. The write
// is atomic: both files land in a dot-prefixed temp directory that is
// renamed into place, so a concurrent scan sees either nothing or the
// complete version. Versions are immutable — publishing over an
// existing (model, version) fails, as does any name that would not
// survive ValidateName.
//
// The snapshot header is validated (format version, known feature
// method, non-empty categories) and its feature method is what lands in
// the manifest; deep validation happens on the first load, where
// core.Load checks everything else.
func Publish(root, model, version, srcPath string, opts PublishOptions) (Manifest, error) {
	if err := ValidateName(model); err != nil {
		return Manifest{}, fmt.Errorf("registry: publish model: %w", err)
	}
	if err := ValidateName(version); err != nil {
		return Manifest{}, fmt.Errorf("registry: publish version: %w", err)
	}
	if opts.CreatedAt.IsZero() {
		return Manifest{}, errors.New("registry: publish needs PublishOptions.CreatedAt")
	}
	if _, err := hsom.ParseKernel(opts.Kernel); err != nil {
		return Manifest{}, err
	}
	b, err := os.ReadFile(srcPath)
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: read snapshot: %w", err)
	}
	header, err := core.ReadSnapshotHeader(bytes.NewReader(b))
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: %s is not a model snapshot: %w", srcPath, err)
	}
	if opts.Method != "" && header.FeatureMethod != opts.Method {
		return Manifest{}, fmt.Errorf("registry: snapshot %s was trained with feature method %q, not the required %q",
			srcPath, header.FeatureMethod, opts.Method)
	}
	sum := sha256.Sum256(b)
	man := Manifest{
		Model:         model,
		Version:       version,
		SHA256:        hex.EncodeToString(sum[:]),
		Bytes:         int64(len(b)),
		FeatureMethod: string(header.FeatureMethod),
		Kernel:        opts.Kernel,
		CreatedAt:     opts.CreatedAt.UTC(),
	}
	if err := man.Validate(); err != nil {
		return Manifest{}, err
	}

	modelDir := filepath.Join(root, model)
	dest := filepath.Join(modelDir, version)
	if _, err := os.Stat(dest); err == nil {
		return Manifest{}, fmt.Errorf("registry: %s/%s is already published (versions are immutable)", model, version)
	} else if !errors.Is(err, os.ErrNotExist) {
		return Manifest{}, fmt.Errorf("registry: publish: %w", err)
	}
	if err := os.MkdirAll(modelDir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("registry: publish: %w", err)
	}
	tmp, err := os.MkdirTemp(modelDir, tempPrefix+version+"-")
	if err != nil {
		return Manifest{}, fmt.Errorf("registry: publish: %w", err)
	}
	// A failed publish must not leave a half-written version visible;
	// the temp dir is removed on every error path (a crash before this
	// runs leaves only an invisible dot-dir a scan counts and skips).
	fail := func(err error) (Manifest, error) {
		if rmErr := os.RemoveAll(tmp); rmErr != nil {
			return Manifest{}, errors.Join(err, rmErr)
		}
		return Manifest{}, err
	}
	if err := os.WriteFile(filepath.Join(tmp, snapshotName), b, 0o644); err != nil {
		return fail(fmt.Errorf("registry: publish snapshot: %w", err))
	}
	mb, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fail(fmt.Errorf("registry: publish manifest: %w", err))
	}
	if err := os.WriteFile(filepath.Join(tmp, manifestName), append(mb, '\n'), 0o644); err != nil {
		return fail(fmt.Errorf("registry: publish manifest: %w", err))
	}
	if err := os.Rename(tmp, dest); err != nil {
		return fail(fmt.Errorf("registry: publish %s/%s: %w", model, version, err))
	}
	//lint:ignore nilerr the immutability gate's stat error is ErrNotExist by design on every path that reaches here
	return man, nil
}
