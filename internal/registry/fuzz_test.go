package registry

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzManifest drives DecodeManifest — the registry's untrusted-input
// surface — with arbitrary bytes. Two properties must hold for every
// input: the decoder never panics, and anything it accepts is a
// manifest whose names are safe single path segments (ValidateName
// passes, so traversal like "../x" or "a/b" can never reach a
// filesystem call) with a well-formed integrity record.
func FuzzManifest(f *testing.F) {
	f.Add([]byte(`{"model":"earn","version":"v1","sha256":"` + strings.Repeat("ab", 32) +
		`","bytes":10,"feature_method":"df","created_at":"2024-03-01T12:00:00Z"}`))
	f.Add([]byte(`{"model":"../../etc","version":"v1","sha256":"` + strings.Repeat("ab", 32) +
		`","bytes":10,"feature_method":"df","created_at":"2024-03-01T12:00:00Z"}`))
	f.Add([]byte(`{"model":".hidden","version":"..","sha256":"x","bytes":-1}`))
	f.Add([]byte(`{"model":"` + strings.Repeat("x", 100) + `"}`))
	f.Add([]byte(`{"model":"earn","version":"v1","surprise":true}`))
	f.Add([]byte(`{}{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted manifests must satisfy every invariant Validate
		// promises — in particular path-segment-safe names.
		if err := m.Validate(); err != nil {
			t.Fatalf("DecodeManifest accepted a manifest Validate rejects: %v\ninput: %q", err, data)
		}
		for _, name := range []string{m.Model, m.Version} {
			if strings.ContainsAny(name, `/\`) || strings.HasPrefix(name, ".") || name == "" || len(name) > maxNameLen {
				t.Fatalf("accepted unsafe name %q\ninput: %q", name, data)
			}
		}
	})
}
