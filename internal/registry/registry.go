package registry

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"temporaldoc/internal/core"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/telemetry"
)

// Sentinel errors the serving layer maps to HTTP statuses: unknown
// model/version become 404, a missing-but-required model name 400.
var (
	ErrUnknownModel   = errors.New("registry: unknown model")
	ErrUnknownVersion = errors.New("registry: unknown version")
	ErrModelRequired  = errors.New("registry: request must name a model (no default is configured and more than one model is published)")
)

// Config parameterises one registry instance.
type Config struct {
	// Root is the registry directory (layout: <root>/<model>/<version>).
	// It must exist; publishing creates model directories beneath it.
	Root string
	// Default, when set, is the model Acquire resolves an empty model
	// name to. When unset and exactly one model is published, that model
	// is the implicit default; otherwise an empty name is an error.
	Default string
	// MaxResident bounds how many models stay loaded at once (0 means
	// unlimited). Exceeding it evicts the least-recently-acquired
	// resident model — only from the registry's cache: snapshots already
	// pinned by requests stay valid.
	MaxResident int
	// MaxResidentBytes bounds the summed snapshot-file sizes of resident
	// models (0 means unlimited). A lone model larger than the bound
	// still loads — the cache never evicts its only entry.
	MaxResidentBytes int64
	// Method, when non-empty, requires every loaded snapshot to record
	// exactly this feature-selection method.
	Method featsel.Method
	// Kernel is the encode kernel applied to loaded models unless their
	// manifest overrides it.
	Kernel hsom.Kernel
	// Metrics receives the registry counters; nil costs nothing.
	Metrics *telemetry.Registry
}

// ScanStats summarises one directory scan.
type ScanStats struct {
	// Models and Versions count what the scan accepted.
	Models   int `json:"models"`
	Versions int `json:"versions"`
	// Skipped counts versions rejected by validation (corrupt manifest,
	// name mismatch, missing or size-mismatched snapshot); TempDirs
	// counts leftover publish temp directories seen (and ignored).
	Skipped  int `json:"skipped"`
	TempDirs int `json:"temp_dirs"`
}

// VersionStatus is one published version as rendered by Models — the
// /v1/models building block.
type VersionStatus struct {
	Version       string    `json:"version"`
	SHA256        string    `json:"sha256"`
	Bytes         int64     `json:"bytes"`
	FeatureMethod string    `json:"feature_method"`
	Kernel        string    `json:"kernel,omitempty"`
	CreatedAt     time.Time `json:"created_at"`
	// Latest marks the version an empty-version Acquire resolves to.
	Latest bool `json:"latest"`
	// Resident reports whether this version is currently loaded.
	Resident bool `json:"resident"`
}

// ModelStatus is one model's catalog entry as rendered by Models.
type ModelStatus struct {
	Name     string          `json:"name"`
	Versions []VersionStatus `json:"versions"`
}

// Snapshot is one loaded, immutable (model, version) pair. Requests pin
// a *Snapshot once and use it for their whole lifetime; the registry
// never mutates a published Snapshot, so eviction cannot invalidate it.
type Snapshot struct {
	Model    *core.Model
	Info     core.SnapshotInfo
	Name     string
	Version  string
	Manifest Manifest
	// LoadedAt is when this snapshot became resident (wall clock,
	// reporting only).
	LoadedAt time.Time
}

// catVersion is one scanned version in the catalog.
type catVersion struct {
	manifest Manifest
	dir      string
}

// catModel is one scanned model: its versions plus their latest-last
// ordering by (CreatedAt, Version).
type catModel struct {
	versions map[string]*catVersion
	order    []string
}

func (cm *catModel) latest() string { return cm.order[len(cm.order)-1] }

// resKey identifies one resident (or loading) model version.
type resKey struct{ model, version string }

// resEntry is the single-flight slot for one (model, version): exactly
// one goroutine loads while everyone else waits on done. snap and err
// are written before done is closed and only read after, so the channel
// close is the only synchronisation waiters need. Entries still in the
// resident map after done closes are always successes — a failed load
// removes its entry (under the registry lock) before closing done.
type resEntry struct {
	key  resKey
	done chan struct{}
	snap *Snapshot
	err  error
	// elem is the entry's LRU position; nil while loading (loading
	// entries are never eviction candidates).
	elem *list.Element
}

type regMetrics struct {
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	coalesced   *telemetry.Counter
	loads       *telemetry.Counter
	loadErrors  *telemetry.Counter
	evictions   *telemetry.Counter
	scanSkipped *telemetry.Counter
	scanTemp    *telemetry.Counter
}

// Registry is a live registry instance: the scanned catalog plus the
// resident-model LRU. All methods are safe for concurrent use.
type Registry struct {
	cfg Config

	// mu guards catalog, resident, lru and residentBytes. It is held
	// only for map/list work — never across a model load.
	mu            sync.Mutex
	catalog       map[string]*catModel
	resident      map[resKey]*resEntry
	lru           *list.List // front = most recently acquired; values *resEntry
	residentBytes int64

	// loader performs the actual snapshot load; core.LoadFile in
	// production, replaced by tests to count loads and fake models.
	loader func(path string) (*core.Model, core.SnapshotInfo, error)

	met regMetrics
}

// Open validates the configuration, scans Root once and returns a live
// registry. An unreadable root is an error; an empty one is a valid
// (zero-model) registry.
func Open(cfg Config) (*Registry, error) {
	if cfg.Root == "" {
		return nil, errors.New("registry: Config.Root is required")
	}
	fi, err := os.Stat(cfg.Root)
	if err != nil {
		return nil, fmt.Errorf("registry: root: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("registry: root %s is not a directory", cfg.Root)
	}
	if cfg.Default != "" {
		if err := ValidateName(cfg.Default); err != nil {
			return nil, fmt.Errorf("registry: default model: %w", err)
		}
	}
	if cfg.Method != "" && !featsel.Known(cfg.Method) {
		return nil, fmt.Errorf("registry: unknown feature-selection method %q", cfg.Method)
	}
	if _, err := hsom.ParseKernel(string(cfg.Kernel)); err != nil {
		return nil, err
	}
	if cfg.MaxResident < 0 || cfg.MaxResidentBytes < 0 {
		return nil, errors.New("registry: resident bounds must be >= 0")
	}
	r := &Registry{
		cfg:      cfg,
		catalog:  map[string]*catModel{},
		resident: map[resKey]*resEntry{},
		lru:      list.New(),
		loader:   core.LoadFile,
		met: regMetrics{
			hits:        cfg.Metrics.Counter("registry.hits"),
			misses:      cfg.Metrics.Counter("registry.misses"),
			coalesced:   cfg.Metrics.Counter("registry.singleflight.coalesced"),
			loads:       cfg.Metrics.Counter("registry.loads"),
			loadErrors:  cfg.Metrics.Counter("registry.load.errors"),
			evictions:   cfg.Metrics.Counter("registry.evictions"),
			scanSkipped: cfg.Metrics.Counter("registry.scan.skipped"),
			scanTemp:    cfg.Metrics.Counter("registry.scan.tempdirs"),
		},
	}
	if _, err := r.Scan(); err != nil {
		return nil, err
	}
	return r, nil
}

// Scan re-reads the registry directory and swaps the catalog. Versions
// that fail validation are skipped (counted, never fatal); resident
// models whose version vanished from disk are dropped from the cache —
// requests that already pinned them are unaffected. Safe to call while
// serving: Acquire resolves names against whichever catalog is current.
func (r *Registry) Scan() (ScanStats, error) {
	var stats ScanStats
	catalog := map[string]*catModel{}
	entries, err := os.ReadDir(r.cfg.Root)
	if err != nil {
		return stats, fmt.Errorf("registry: scan: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if name[0] == '.' {
			stats.TempDirs++
			continue
		}
		if ValidateName(name) != nil {
			stats.Skipped++
			continue
		}
		cm := r.scanModel(name, &stats)
		if cm != nil {
			catalog[name] = cm
			stats.Models++
			stats.Versions += len(cm.order)
		}
	}
	r.met.scanSkipped.Add(int64(stats.Skipped))
	r.met.scanTemp.Add(int64(stats.TempDirs))

	r.mu.Lock()
	r.catalog = catalog
	// Drop resident entries whose version no longer exists on disk.
	// Loading entries stay: their loader already resolved a path, and
	// they leave the cache through the normal error/eviction paths.
	for key, e := range r.resident {
		if e.elem == nil {
			continue
		}
		if cm := catalog[key.model]; cm != nil && cm.versions[key.version] != nil {
			continue
		}
		r.evictLocked(e)
	}
	r.mu.Unlock()
	return stats, nil
}

// scanModel reads one model directory, returning nil when no valid
// version survives.
func (r *Registry) scanModel(model string, stats *ScanStats) *catModel {
	dir := filepath.Join(r.cfg.Root, model)
	entries, err := os.ReadDir(dir)
	if err != nil {
		stats.Skipped++
		return nil
	}
	cm := &catModel{versions: map[string]*catVersion{}}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		version := e.Name()
		if version[0] == '.' {
			// A crashed publish's temp directory: invisible, counted, and
			// deliberately left in place — an external publisher may still
			// be writing into it, so a rescan must not delete it.
			stats.TempDirs++
			continue
		}
		if ValidateName(version) != nil {
			stats.Skipped++
			continue
		}
		vdir := filepath.Join(dir, version)
		man, err := readVersion(model, version, vdir)
		if err != nil {
			stats.Skipped++
			continue
		}
		cm.versions[version] = &catVersion{manifest: man, dir: vdir}
		cm.order = append(cm.order, version)
	}
	if len(cm.order) == 0 {
		return nil
	}
	sort.Slice(cm.order, func(i, j int) bool {
		a, b := cm.versions[cm.order[i]].manifest, cm.versions[cm.order[j]].manifest
		if !a.CreatedAt.Equal(b.CreatedAt) {
			return a.CreatedAt.Before(b.CreatedAt)
		}
		return a.Version < b.Version
	})
	return cm
}

// readVersion validates one version directory: a decodable manifest
// that agrees with its location, next to a snapshot of the manifest's
// exact size. The content hash is deferred to load time, where the
// bytes are read anyway.
func readVersion(model, version, dir string) (Manifest, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, err
	}
	man, err := DecodeManifest(f)
	closeErr := f.Close()
	if err != nil {
		return Manifest{}, err
	}
	if closeErr != nil {
		return Manifest{}, closeErr
	}
	if man.Model != model || man.Version != version {
		return Manifest{}, fmt.Errorf("registry: manifest names %s/%s but sits in %s/%s",
			man.Model, man.Version, model, version)
	}
	fi, err := os.Stat(filepath.Join(dir, snapshotName))
	if err != nil {
		return Manifest{}, err
	}
	if fi.Size() != man.Bytes {
		return Manifest{}, fmt.Errorf("registry: snapshot is %d bytes, manifest says %d", fi.Size(), man.Bytes)
	}
	return man, nil
}

// Models renders the catalog for /v1/models: models sorted by name,
// versions oldest-first with the latest flagged, resident status from
// the live cache.
func (r *Registry) Models() []ModelStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.catalog))
	for name := range r.catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ModelStatus, 0, len(names))
	for _, name := range names {
		cm := r.catalog[name]
		ms := ModelStatus{Name: name, Versions: make([]VersionStatus, 0, len(cm.order))}
		for i, v := range cm.order {
			man := cm.versions[v].manifest
			e := r.resident[resKey{name, v}]
			ms.Versions = append(ms.Versions, VersionStatus{
				Version:       v,
				SHA256:        man.SHA256,
				Bytes:         man.Bytes,
				FeatureMethod: man.FeatureMethod,
				Kernel:        man.Kernel,
				CreatedAt:     man.CreatedAt,
				Latest:        i == len(cm.order)-1,
				Resident:      e != nil && e.elem != nil,
			})
		}
		out = append(out, ms)
	}
	return out
}

// Default resolves the model an empty request name maps to: the
// configured default when present in the catalog, else the sole
// published model. ok is false when neither applies.
func (r *Registry) Default() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name, err := r.defaultLocked()
	return name, err == nil
}

func (r *Registry) defaultLocked() (string, error) {
	if r.cfg.Default != "" {
		if r.catalog[r.cfg.Default] == nil {
			return "", fmt.Errorf("%w %q (configured default)", ErrUnknownModel, r.cfg.Default)
		}
		return r.cfg.Default, nil
	}
	if len(r.catalog) == 1 {
		for name := range r.catalog {
			return name, nil
		}
	}
	return "", ErrModelRequired
}

// DefaultVersionInfo reports the default model's latest published
// version and snapshot hash without loading anything — the health
// endpoint's cheap identity answer. ok is false when no default model
// resolves.
func (r *Registry) DefaultVersionInfo() (model, version, sha256 string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name, err := r.defaultLocked()
	if err != nil {
		return "", "", "", false
	}
	cm := r.catalog[name]
	v := cm.latest()
	return name, v, cm.versions[v].manifest.SHA256, true
}

// Acquire resolves (model, version) — both optional: an empty model
// takes the default, an empty version the model's latest — and returns
// the resident snapshot, loading it if cold. Concurrent cold requests
// for the same version coalesce into exactly one load (single-flight);
// waiters block until the load finishes or ctx is done. A successful
// Acquire marks the version most-recently-used and may evict the LRU
// tail past the configured resident bounds.
func (r *Registry) Acquire(ctx context.Context, model, version string) (*Snapshot, error) {
	r.mu.Lock()
	if model == "" {
		var err error
		if model, err = r.defaultLocked(); err != nil {
			r.mu.Unlock()
			return nil, err
		}
	}
	cm := r.catalog[model]
	if cm == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w %q", ErrUnknownModel, model)
	}
	if version == "" {
		version = cm.latest()
	}
	cv := cm.versions[version]
	if cv == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w %q of model %q", ErrUnknownVersion, version, model)
	}
	key := resKey{model, version}
	if e := r.resident[key]; e != nil {
		if e.elem != nil {
			// Resident: touch and return without blocking.
			r.lru.MoveToFront(e.elem)
			r.met.hits.Inc()
			r.mu.Unlock()
			return e.snap, nil
		}
		// Someone else is loading this exact version: wait for them.
		r.met.coalesced.Inc()
		r.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			return nil, e.err
		}
		return e.snap, nil
	}
	// Cold: claim the single-flight slot, then load outside the lock.
	e := &resEntry{key: key, done: make(chan struct{})}
	r.resident[key] = e
	r.met.misses.Inc()
	r.mu.Unlock()

	snap, err := r.load(model, version, cv)
	r.mu.Lock()
	if err != nil {
		// Remove the slot before releasing waiters so the resident map
		// never holds a completed failure — the next Acquire retries.
		delete(r.resident, key)
		r.met.loadErrors.Inc()
		r.mu.Unlock()
		e.err = err
		close(e.done)
		return nil, err
	}
	e.snap = snap
	e.elem = r.lru.PushFront(e)
	r.residentBytes += snap.Info.Bytes
	r.enforceBoundsLocked()
	r.mu.Unlock()
	close(e.done)
	return snap, nil
}

// load reads, verifies and prepares one snapshot. Runs without the
// registry lock — loading is the slow path and must not block hits.
func (r *Registry) load(model, version string, cv *catVersion) (*Snapshot, error) {
	r.met.loads.Inc()
	m, info, err := r.loader(filepath.Join(cv.dir, snapshotName))
	if err != nil {
		return nil, fmt.Errorf("registry: load %s/%s: %w", model, version, err)
	}
	man := cv.manifest
	if info.SHA256 != man.SHA256 {
		return nil, fmt.Errorf("registry: %s/%s snapshot bytes (sha256 %s) do not match the manifest (%s)",
			model, version, info.SHA256, man.SHA256)
	}
	if info.Bytes != man.Bytes {
		return nil, fmt.Errorf("registry: %s/%s snapshot is %d bytes, manifest says %d",
			model, version, info.Bytes, man.Bytes)
	}
	if got := string(m.FeatureMethod()); got != man.FeatureMethod {
		return nil, fmt.Errorf("registry: %s/%s was trained with feature method %q, manifest says %q",
			model, version, got, man.FeatureMethod)
	}
	if r.cfg.Method != "" && m.FeatureMethod() != r.cfg.Method {
		return nil, fmt.Errorf("registry: %s/%s feature method %q does not satisfy the required %q",
			model, version, m.FeatureMethod(), r.cfg.Method)
	}
	kernel := string(r.cfg.Kernel)
	if man.Kernel != "" {
		kernel = man.Kernel
	}
	if err := m.SetKernel(kernel); err != nil {
		return nil, fmt.Errorf("registry: %s/%s: %w", model, version, err)
	}
	m.AttachTelemetry(r.cfg.Metrics, nil)
	//lint:ignore determinism resident-since metadata: reported on /v1/models, never reaches model state
	now := time.Now()
	return &Snapshot{
		Model:    m,
		Info:     info,
		Name:     model,
		Version:  version,
		Manifest: man,
		LoadedAt: now,
	}, nil
}

// enforceBoundsLocked evicts LRU-tail entries until the resident cache
// fits both configured bounds, always keeping at least one entry so a
// single oversized model can still serve.
func (r *Registry) enforceBoundsLocked() {
	for r.lru.Len() > 1 &&
		((r.cfg.MaxResident > 0 && r.lru.Len() > r.cfg.MaxResident) ||
			(r.cfg.MaxResidentBytes > 0 && r.residentBytes > r.cfg.MaxResidentBytes)) {
		r.evictLocked(r.lru.Back().Value.(*resEntry))
	}
}

// evictLocked forgets one resident entry. The snapshot itself stays
// valid for anyone who already pinned it; only the registry's reference
// (and its byte accounting) goes away.
func (r *Registry) evictLocked(e *resEntry) {
	r.lru.Remove(e.elem)
	delete(r.resident, e.key)
	r.residentBytes -= e.snap.Info.Bytes
	r.met.evictions.Inc()
}

// ResidentCount reports how many models are currently loaded
// (diagnostics; the authoritative view is Models' Resident flags).
func (r *Registry) ResidentCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}
