package ngram

import (
	"reflect"
	"testing"
	"testing/quick"

	"temporaldoc/internal/corpus"
)

func TestExtractBigrams(t *testing.T) {
	got := Extract([]string{"a", "b", "c", "d"}, 2)
	want := []string{"a_b", "b_c", "c_d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Extract = %v, want %v", got, want)
	}
}

func TestExtractEdgeCases(t *testing.T) {
	if got := Extract([]string{"a"}, 2); got != nil {
		t.Errorf("short input: %v", got)
	}
	if got := Extract(nil, 1); got != nil {
		t.Errorf("nil input: %v", got)
	}
	if got := Extract([]string{"a", "b"}, 0); got != nil {
		t.Errorf("zero order: %v", got)
	}
	if got := Extract([]string{"a", "b"}, 2); !reflect.DeepEqual(got, []string{"a_b"}) {
		t.Errorf("exact length: %v", got)
	}
}

func TestExtractUpTo(t *testing.T) {
	got := ExtractUpTo([]string{"a", "b", "c"}, 2)
	want := []string{"a", "b", "c", "a_b", "b_c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractUpTo = %v, want %v", got, want)
	}
}

// Property: number of n-grams is max(0, len-n+1).
func TestExtractCountProperty(t *testing.T) {
	f := func(words []string, n uint8) bool {
		order := int(n%4) + 1
		got := len(Extract(words, order))
		want := len(words) - order + 1
		if want < 0 {
			want = 0
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTopByCategoryDF(t *testing.T) {
	train := []corpus.Document{
		{ID: "1", Words: []string{"net", "profit", "rose"}, Categories: []string{"earn"}},
		{ID: "2", Words: []string{"net", "profit", "fell"}, Categories: []string{"earn"}},
		{ID: "3", Words: []string{"wheat", "crop"}, Categories: []string{"grain"}},
	}
	top := TopByCategoryDF(train, "earn", 2, 3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	// "net", "profit" and "net_profit" all appear in both earn docs.
	set := map[string]bool{}
	for _, g := range top {
		set[g] = true
	}
	if !set["net"] || !set["net_profit"] {
		t.Errorf("expected df-2 n-grams in top: %v", top)
	}
	if set["wheat"] {
		t.Errorf("out-of-category n-gram selected: %v", top)
	}
}

func TestTopByCategoryDFBudget(t *testing.T) {
	train := []corpus.Document{
		{ID: "1", Words: []string{"a", "b"}, Categories: []string{"x"}},
	}
	if got := TopByCategoryDF(train, "x", 1, 10); len(got) != 2 {
		t.Errorf("budget clamp: %v", got)
	}
	if got := TopByCategoryDF(train, "missing", 1, 10); len(got) != 0 {
		t.Errorf("unknown category: %v", got)
	}
}

func TestCountVector(t *testing.T) {
	features := []string{"net", "net_profit", "wheat"}
	got := CountVector([]string{"net", "profit", "net", "profit"}, features)
	want := []float64{2, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CountVector = %v, want %v", got, want)
	}
}

func TestCountVectorEmpty(t *testing.T) {
	if got := CountVector(nil, []string{"a"}); got[0] != 0 {
		t.Errorf("CountVector(nil) = %v", got)
	}
	if got := CountVector([]string{"a"}, nil); len(got) != 0 {
		t.Errorf("CountVector no features = %v", got)
	}
}
