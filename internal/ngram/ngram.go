// Package ngram extracts statistical word n-grams — the representation
// behind the tree-GP baseline (Hirsch et al. 2005, the T-GP system of
// Table 5) and one of the phrase-based representations the paper's
// related-work section discusses.
package ngram

import (
	"sort"
	"strings"

	"temporaldoc/internal/corpus"
)

// Sep joins the words of an n-gram into a single feature name.
const Sep = "_"

// Extract returns the n-grams of order n from the ordered word sequence,
// in order of occurrence (with duplicates).
func Extract(words []string, n int) []string {
	if n <= 0 || len(words) < n {
		return nil
	}
	out := make([]string, 0, len(words)-n+1)
	for i := 0; i+n <= len(words); i++ {
		out = append(out, strings.Join(words[i:i+n], Sep))
	}
	return out
}

// ExtractUpTo returns all n-grams of orders 1..maxN, in occurrence order
// per order.
func ExtractUpTo(words []string, maxN int) []string {
	var out []string
	for n := 1; n <= maxN; n++ {
		out = append(out, Extract(words, n)...)
	}
	return out
}

// TopByCategoryDF returns the k n-grams (orders 1..maxN) that appear in
// the most training documents of the target category, ties broken
// lexicographically. This is the feature-construction step of the T-GP
// baseline.
func TopByCategoryDF(train []corpus.Document, category string, maxN, k int) []string {
	df := make(map[string]int)
	for i := range train {
		if !train[i].HasCategory(category) {
			continue
		}
		seen := make(map[string]struct{})
		for _, g := range ExtractUpTo(train[i].Words, maxN) {
			if _, ok := seen[g]; ok {
				continue
			}
			seen[g] = struct{}{}
			df[g]++
		}
	}
	type item struct {
		g string
		c int
	}
	items := make([]item, 0, len(df))
	for g, c := range df {
		items = append(items, item{g, c})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].c != items[j].c {
			return items[i].c > items[j].c
		}
		return items[i].g < items[j].g
	})
	if k > len(items) {
		k = len(items)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = items[i].g
	}
	return out
}

// CountVector returns, for each feature n-gram, its occurrence count in
// the word sequence (features may be of mixed orders).
func CountVector(words []string, features []string) []float64 {
	counts := make(map[string]float64)
	maxN := 1
	for _, f := range features {
		if n := strings.Count(f, Sep) + 1; n > maxN {
			maxN = n
		}
	}
	for n := 1; n <= maxN; n++ {
		for _, g := range Extract(words, n) {
			counts[g]++
		}
	}
	out := make([]float64, len(features))
	for i, f := range features {
		out[i] = counts[f]
	}
	return out
}
