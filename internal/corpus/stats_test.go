package corpus

import (
	"strings"
	"testing"
)

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(nil)
	if s.Documents != 0 || s.TotalWords != 0 || s.VocabularySize != 0 {
		t.Errorf("empty stats: %+v", s)
	}
}

func TestComputeStats(t *testing.T) {
	docs := []Document{
		{ID: "1", Words: []string{"a", "b", "a"}, Categories: []string{"x"}},
		{ID: "2", Words: []string{"c"}, Categories: []string{"x", "y"}},
		{ID: "3", Words: []string{"a", "b", "c", "d", "e"}, Categories: []string{"y"}},
	}
	s := ComputeStats(docs)
	if s.Documents != 3 {
		t.Errorf("Documents = %d", s.Documents)
	}
	if s.TotalWords != 9 {
		t.Errorf("TotalWords = %d", s.TotalWords)
	}
	if s.MinWords != 1 || s.MaxWords != 5 || s.MedianWords != 3 {
		t.Errorf("length stats: %+v", s)
	}
	if s.MeanWords != 3 {
		t.Errorf("MeanWords = %v", s.MeanWords)
	}
	if s.VocabularySize != 5 {
		t.Errorf("VocabularySize = %d", s.VocabularySize)
	}
	if s.MultiLabel != 1 {
		t.Errorf("MultiLabel = %d", s.MultiLabel)
	}
	if s.LabelCounts["x"] != 2 || s.LabelCounts["y"] != 2 {
		t.Errorf("LabelCounts = %v", s.LabelCounts)
	}
}

func TestStatsFormat(t *testing.T) {
	docs := []Document{
		{ID: "1", Words: []string{"a"}, Categories: []string{"earn"}},
	}
	out := ComputeStats(docs).Format()
	for _, want := range []string{"documents", "vocabulary", "earn"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}
