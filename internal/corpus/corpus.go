// Package corpus defines the document and corpus model shared by every
// stage of the temporaldoc pipeline: pre-processing, feature selection,
// SOM encoding and classification.
//
// A Document is an ordered sequence of tokens. Order is the point of the
// whole system — the downstream encoder and classifier consume words one
// after another in time, so nothing in this package may reorder tokens.
package corpus

import (
	"fmt"
	"sort"
)

// Document is a single text document after tokenisation. Words preserves
// the original in-document order; Categories holds zero or more topic
// labels (Reuters documents are frequently multi-labelled).
type Document struct {
	// ID is a corpus-unique identifier (e.g. the Reuters NEWID).
	ID string
	// Title is the document title, if any. It is informational only;
	// classification operates on Words.
	Title string
	// Words is the ordered token sequence of the document body.
	Words []string
	// Categories is the set of topic labels assigned to the document.
	Categories []string
}

// HasCategory reports whether the document carries the given label.
func (d *Document) HasCategory(cat string) bool {
	for _, c := range d.Categories {
		if c == cat {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the document.
func (d *Document) Clone() Document {
	return Document{
		ID:         d.ID,
		Title:      d.Title,
		Words:      append([]string(nil), d.Words...),
		Categories: append([]string(nil), d.Categories...),
	}
}

// Corpus is a labelled document collection with a fixed train/test split,
// mirroring the Reuters-21578 ModApte arrangement used by the paper.
type Corpus struct {
	// Train holds the training split.
	Train []Document
	// Test holds the evaluation split.
	Test []Document
	// Categories lists the label inventory in a stable order.
	Categories []string
}

// TrainFor returns the training documents labelled with cat.
func (c *Corpus) TrainFor(cat string) []Document {
	return docsFor(c.Train, cat)
}

// TestFor returns the test documents labelled with cat.
func (c *Corpus) TestFor(cat string) []Document {
	return docsFor(c.Test, cat)
}

func docsFor(docs []Document, cat string) []Document {
	var out []Document
	for i := range docs {
		if docs[i].HasCategory(cat) {
			out = append(out, docs[i])
		}
	}
	return out
}

// CategoryCounts returns the number of training and test documents per
// category, keyed by category name.
func (c *Corpus) CategoryCounts() map[string][2]int {
	counts := make(map[string][2]int, len(c.Categories))
	for _, cat := range c.Categories {
		counts[cat] = [2]int{len(c.TrainFor(cat)), len(c.TestFor(cat))}
	}
	return counts
}

// Vocabulary returns the sorted set of distinct words appearing in the
// given documents.
func Vocabulary(docs []Document) []string {
	seen := make(map[string]struct{})
	for i := range docs {
		for _, w := range docs[i].Words {
			seen[w] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural invariants: non-empty split sizes, every
// document label present in the corpus label inventory, and unique IDs.
// It returns the first violation found.
func (c *Corpus) Validate() error {
	if len(c.Train) == 0 {
		return fmt.Errorf("corpus: empty training split")
	}
	if len(c.Test) == 0 {
		return fmt.Errorf("corpus: empty test split")
	}
	known := make(map[string]struct{}, len(c.Categories))
	for _, cat := range c.Categories {
		if cat == "" {
			return fmt.Errorf("corpus: empty category name in inventory")
		}
		if _, dup := known[cat]; dup {
			return fmt.Errorf("corpus: duplicate category %q in inventory", cat)
		}
		known[cat] = struct{}{}
	}
	ids := make(map[string]struct{}, len(c.Train)+len(c.Test))
	check := func(split string, docs []Document) error {
		for i := range docs {
			d := &docs[i]
			if d.ID == "" {
				return fmt.Errorf("corpus: %s[%d] has empty ID", split, i)
			}
			if _, dup := ids[d.ID]; dup {
				return fmt.Errorf("corpus: duplicate document ID %q", d.ID)
			}
			ids[d.ID] = struct{}{}
			for _, cat := range d.Categories {
				if _, ok := known[cat]; !ok {
					return fmt.Errorf("corpus: document %q labelled with unknown category %q", d.ID, cat)
				}
			}
		}
		return nil
	}
	if err := check("train", c.Train); err != nil {
		return err
	}
	return check("test", c.Test)
}

// FilterWords returns a copy of doc whose Words sequence keeps only the
// words present in keep, preserving the original order. This implements
// the paper's post-feature-selection view of a document: the classifier
// sees the ordered subsequence of selected features.
func FilterWords(doc Document, keep map[string]bool) Document {
	out := doc.Clone()
	filtered := out.Words[:0]
	for _, w := range out.Words {
		if keep[w] {
			filtered = append(filtered, w)
		}
	}
	out.Words = filtered
	return out
}
