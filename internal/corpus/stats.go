package corpus

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarises a document collection: sizes, lengths, vocabulary and
// label structure.
type Stats struct {
	Documents      int
	TotalWords     int
	MeanWords      float64
	MedianWords    int
	MinWords       int
	MaxWords       int
	VocabularySize int
	MultiLabel     int
	LabelCounts    map[string]int
}

// ComputeStats summarises the given documents.
func ComputeStats(docs []Document) Stats {
	s := Stats{LabelCounts: make(map[string]int)}
	if len(docs) == 0 {
		return s
	}
	s.Documents = len(docs)
	lengths := make([]int, 0, len(docs))
	vocab := make(map[string]struct{})
	s.MinWords = len(docs[0].Words)
	for i := range docs {
		d := &docs[i]
		n := len(d.Words)
		s.TotalWords += n
		lengths = append(lengths, n)
		if n < s.MinWords {
			s.MinWords = n
		}
		if n > s.MaxWords {
			s.MaxWords = n
		}
		for _, w := range d.Words {
			vocab[w] = struct{}{}
		}
		if len(d.Categories) > 1 {
			s.MultiLabel++
		}
		for _, cat := range d.Categories {
			s.LabelCounts[cat]++
		}
	}
	s.MeanWords = float64(s.TotalWords) / float64(len(docs))
	sort.Ints(lengths)
	s.MedianWords = lengths[len(lengths)/2]
	s.VocabularySize = len(vocab)
	return s
}

// Format renders the stats.
func (s Stats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "documents      %d\n", s.Documents)
	fmt.Fprintf(&b, "total words    %d\n", s.TotalWords)
	fmt.Fprintf(&b, "words/doc      mean %.1f, median %d, min %d, max %d\n",
		s.MeanWords, s.MedianWords, s.MinWords, s.MaxWords)
	fmt.Fprintf(&b, "vocabulary     %d distinct words\n", s.VocabularySize)
	fmt.Fprintf(&b, "multi-label    %d documents\n", s.MultiLabel)
	cats := make([]string, 0, len(s.LabelCounts))
	for cat := range s.LabelCounts {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool {
		if s.LabelCounts[cats[i]] != s.LabelCounts[cats[j]] {
			return s.LabelCounts[cats[i]] > s.LabelCounts[cats[j]]
		}
		return cats[i] < cats[j]
	})
	for _, cat := range cats {
		fmt.Fprintf(&b, "  %-12s %d\n", cat, s.LabelCounts[cat])
	}
	return b.String()
}
