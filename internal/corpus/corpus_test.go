package corpus

import (
	"reflect"
	"testing"
)

func sampleCorpus() *Corpus {
	return &Corpus{
		Train: []Document{
			{ID: "t1", Words: []string{"wheat", "crop", "export"}, Categories: []string{"grain", "wheat"}},
			{ID: "t2", Words: []string{"profit", "dividend"}, Categories: []string{"earn"}},
			{ID: "t3", Words: []string{"oil", "barrel"}, Categories: []string{"crude"}},
		},
		Test: []Document{
			{ID: "s1", Words: []string{"wheat", "tonnes"}, Categories: []string{"grain"}},
		},
		Categories: []string{"earn", "grain", "wheat", "crude"},
	}
}

func TestHasCategory(t *testing.T) {
	d := Document{Categories: []string{"grain", "wheat"}}
	if !d.HasCategory("grain") || !d.HasCategory("wheat") {
		t.Error("expected labels missing")
	}
	if d.HasCategory("earn") {
		t.Error("unexpected label present")
	}
	var empty Document
	if empty.HasCategory("grain") {
		t.Error("empty doc reported a label")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := Document{ID: "a", Words: []string{"x", "y"}, Categories: []string{"c"}}
	c := d.Clone()
	c.Words[0] = "mut"
	c.Categories[0] = "mut"
	if d.Words[0] != "x" || d.Categories[0] != "c" {
		t.Error("Clone shares backing arrays")
	}
}

func TestTrainForTestFor(t *testing.T) {
	c := sampleCorpus()
	if got := c.TrainFor("grain"); len(got) != 1 || got[0].ID != "t1" {
		t.Errorf("TrainFor(grain) = %v", got)
	}
	if got := c.TestFor("grain"); len(got) != 1 || got[0].ID != "s1" {
		t.Errorf("TestFor(grain) = %v", got)
	}
	if got := c.TrainFor("nope"); got != nil {
		t.Errorf("TrainFor(nope) = %v, want nil", got)
	}
}

func TestCategoryCounts(t *testing.T) {
	c := sampleCorpus()
	counts := c.CategoryCounts()
	want := map[string][2]int{
		"earn": {1, 0}, "grain": {1, 1}, "wheat": {1, 0}, "crude": {1, 0},
	}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("CategoryCounts = %v, want %v", counts, want)
	}
}

func TestVocabularySortedUnique(t *testing.T) {
	docs := []Document{
		{Words: []string{"b", "a", "b"}},
		{Words: []string{"c", "a"}},
	}
	if got, want := Vocabulary(docs), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Vocabulary = %v, want %v", got, want)
	}
	if got := Vocabulary(nil); len(got) != 0 {
		t.Errorf("Vocabulary(nil) = %v", got)
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleCorpus().Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Corpus)
	}{
		{"empty train", func(c *Corpus) { c.Train = nil }},
		{"empty test", func(c *Corpus) { c.Test = nil }},
		{"empty category name", func(c *Corpus) { c.Categories = append(c.Categories, "") }},
		{"duplicate category", func(c *Corpus) { c.Categories = append(c.Categories, "earn") }},
		{"empty doc ID", func(c *Corpus) { c.Train[0].ID = "" }},
		{"duplicate doc ID", func(c *Corpus) { c.Test[0].ID = "t1" }},
		{"unknown label", func(c *Corpus) { c.Train[1].Categories = []string{"mystery"} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := sampleCorpus()
			tc.mutate(c)
			if err := c.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestFilterWordsPreservesOrder(t *testing.T) {
	doc := Document{ID: "d", Words: []string{"a", "b", "c", "a", "d", "b"}}
	keep := map[string]bool{"a": true, "b": true}
	got := FilterWords(doc, keep)
	if want := []string{"a", "b", "a", "b"}; !reflect.DeepEqual(got.Words, want) {
		t.Errorf("FilterWords = %v, want %v", got.Words, want)
	}
	// Original untouched.
	if len(doc.Words) != 6 {
		t.Error("FilterWords mutated its input")
	}
}

func TestFilterWordsEmptyKeep(t *testing.T) {
	doc := Document{ID: "d", Words: []string{"a", "b"}}
	if got := FilterWords(doc, nil); len(got.Words) != 0 {
		t.Errorf("FilterWords(nil keep) = %v", got.Words)
	}
}
