package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"temporaldoc/internal/core"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/telemetry"
)

// ModelSnapshot pairs a loaded model with the identity of the snapshot
// file it came from. A request pins exactly one ModelSnapshot for its
// whole lifetime, so every document of a batch is scored by the same
// model and the response can prove which one via Info.SHA256.
type ModelSnapshot struct {
	Model *core.Model
	Info  core.SnapshotInfo
	// Name and Version identify the snapshot in the registry's
	// namespace; the single-model path serves SingleModelName /
	// SingleModelVersion so every response names its tenant either way.
	Name    string
	Version string
	// LoadedAt is when this snapshot became current (wall clock,
	// reporting only).
	LoadedAt time.Time
}

// Handle is an atomically swappable reference to the current model.
// Readers (request workers) pay one atomic pointer load; writers
// (reloads) fully construct the new model before publishing it, so a
// failed reload leaves the previous model serving and an in-flight
// request never observes a half-loaded or mixed model.
type Handle struct {
	path   string
	method featsel.Method
	kernel hsom.Kernel
	reg    *telemetry.Registry

	// mu serialises reloads; it is never taken on the request path.
	mu  sync.Mutex
	cur atomic.Pointer[ModelSnapshot]

	reloads      *telemetry.Counter
	reloadErrors *telemetry.Counter
}

// OpenHandle loads the snapshot at path and returns a live handle.
// When method is non-empty the snapshot header must record exactly that
// feature-selection method. kernel selects the level-2 encode kernel
// applied to every loaded model ("" is the float64 default); the choice
// survives reloads but never touches the snapshot file.
func OpenHandle(path string, method featsel.Method, kernel hsom.Kernel, reg *telemetry.Registry) (*Handle, error) {
	h := &Handle{
		path:         path,
		method:       method,
		kernel:       kernel,
		reg:          reg,
		reloads:      reg.Counter("serve.reloads"),
		reloadErrors: reg.Counter("serve.reload.errors"),
	}
	if _, err := h.Reload(); err != nil {
		return nil, err
	}
	return h, nil
}

// Current returns the model snapshot serving right now. Callers must
// keep using the returned pointer — not call Current again — for the
// rest of a request, so concurrent reloads cannot mix models within
// one response.
func (h *Handle) Current() *ModelSnapshot { return h.cur.Load() }

// Reload re-reads the snapshot file and atomically swaps it in. On any
// error the previous model keeps serving untouched. Safe to call
// concurrently with itself and with Current.
func (h *Handle) Reload() (*ModelSnapshot, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, info, err := core.LoadFile(h.path)
	if err != nil {
		h.reloadErrors.Inc()
		return nil, err
	}
	if h.method != "" && m.FeatureMethod() != h.method {
		h.reloadErrors.Inc()
		return nil, fmt.Errorf("serve: snapshot %s was trained with feature method %q, not the required %q",
			h.path, m.FeatureMethod(), h.method)
	}
	m.AttachTelemetry(h.reg, nil)
	// Apply the handle's kernel before publishing: requests must never
	// observe a model whose kernel is still switching.
	if err := m.SetKernel(string(h.kernel)); err != nil {
		h.reloadErrors.Inc()
		return nil, err
	}
	//lint:ignore determinism serving metadata: the load timestamp is reported on /v1/modelz, never reaches model state
	now := time.Now()
	snap := &ModelSnapshot{Model: m, Info: info, Name: SingleModelName, Version: SingleModelVersion, LoadedAt: now}
	h.cur.Store(snap)
	h.reloads.Inc()
	return snap, nil
}
