package serve

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync/atomic"
)

// RequestIDHeader is the header a request id arrives in and is echoed
// back on: clients that set it can correlate their logs with the
// server's trace records; clients that don't get a generated id.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted client-supplied ids so a hostile
// header cannot bloat logs or trace records.
const maxRequestIDLen = 128

// reqIDPrefix makes ids from different server processes distinct: four
// random bytes drawn once at startup, then a process-local counter.
// (crypto/rand, not math/rand: nothing here needs reproducibility, and
// the global math/rand source is banned repo-wide by tdlint.)
var reqIDPrefix = func() string {
	var b [4]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "00000000" // ids stay unique per process via the counter
	}
	return hex.EncodeToString(b[:])
}()

var reqIDSeq atomic.Uint64

func nextRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDSeq.Add(1))
}

// requestIDKey is the context key the request id travels under.
type requestIDKey struct{}

// RequestIDFrom returns the request id the middleware assigned, or ""
// outside a served request.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// withRequestID gives every request an id: a client-supplied
// X-Request-ID (truncated to a sane bound) or a generated one. The id
// is echoed on the response header immediately — before the handler
// runs, so even 500s and panics carry it — and stored in the request
// context for handlers, trace records and panic logs.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if len(id) > maxRequestIDLen {
			id = id[:maxRequestIDLen]
		}
		if id == "" {
			id = nextRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// recoverPanics converts a panicking handler into a logged, counted 500
// instead of a killed connection. Without it a panic unwinds into
// net/http's connection-level recover: the client sees a reset with no
// response and no metric moves — a loadgen run would silently lose the
// request. Mounted inside InstrumentHandler so the 500 still lands in
// the per-route status counters.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			s.met.panics.Inc()
			s.cfg.Log.Error("handler panic",
				"request_id", RequestIDFrom(r.Context()),
				"path", r.URL.Path,
				"panic", fmt.Sprint(v),
				"stack", string(debug.Stack()))
			// Best effort: if the handler already wrote headers this
			// write fails silently, but the common panic-before-write
			// case gets a proper JSON 500.
			writeError(w, http.StatusInternalServerError, "internal server error")
		}()
		next.ServeHTTP(w, r)
	})
}
