package serve

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"time"

	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/telemetry"
)

// Config parameterises one classification server. The zero value of
// every limit takes a serving-safe default; exactly one of ModelPath
// (single-model mode) and ModelsDir (registry mode) is required.
type Config struct {
	// ModelPath is the persisted snapshot (core.Model.Save output) the
	// server loads at start and re-reads on every reload. Mutually
	// exclusive with ModelsDir.
	ModelPath string
	// ModelsDir switches the server into registry mode: the directory is
	// a model registry (<dir>/<model>/<version>/snapshot.bin +
	// manifest.json), classify requests may name a model and version,
	// and reloads become registry rescans. Mutually exclusive with
	// ModelPath.
	ModelsDir string
	// DefaultModel is the model an unnamed classify request resolves to
	// in registry mode. When empty, a sole published model is the
	// implicit default; with several models, unnamed requests fail 400.
	DefaultModel string
	// Resident bounds how many models stay loaded at once in registry
	// mode (default 4, 0 picks the default; use ResidentBytes for a
	// size-based bound instead). Least-recently-used models are evicted
	// from the cache — never out from under an in-flight request, which
	// keeps its pinned snapshot.
	Resident int
	// ResidentBytes, when positive, bounds the summed snapshot sizes of
	// resident models instead of (or in addition to) the count.
	ResidentBytes int64
	// Method, when non-empty, requires the snapshot header to record
	// exactly this feature-selection method; loads (initial and reload)
	// of a mismatching snapshot fail. Empty accepts whatever the
	// snapshot records.
	Method featsel.Method
	// Kernel selects the level-2 encode kernel applied to every loaded
	// model: "float64" (the default, also the empty string), "float32"
	// (the opt-in reduced-precision distance sweep) or "legacy" (the
	// dense reference path). Runtime-only — the snapshot file is never
	// affected.
	Kernel string
	// Workers bounds concurrent classification jobs. Default
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs.
	// When the queue is full new requests are rejected with 503 and a
	// Retry-After header instead of piling up goroutines. Default 64.
	QueueDepth int
	// MaxBatch bounds the documents of one batch request. Default 64.
	MaxBatch int
	// MaxBodyBytes bounds a request body; larger bodies get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds one request's total time in the server
	// (queue wait + scoring); exceeding it returns 504. Default 10s.
	RequestTimeout time.Duration
	// RetryAfter is the back-off hint advertised on 503 responses.
	// Default 1s.
	RetryAfter time.Duration
	// Metrics, when non-nil, receives the serving metrics (request
	// counts, latency, queue depth, reloads) and is re-attached to
	// every loaded model so scoring telemetry keeps flowing across
	// reloads. A nil registry costs nothing.
	Metrics *telemetry.Registry
	// Trace, when non-nil, receives one JSONL RequestTraceRecord per
	// sampled request (stage durations, request id, batch size, model
	// hash, status). Sampling is off unless TraceSampleEvery is also
	// set; the unsampled request path allocates nothing.
	Trace *telemetry.EventWriter
	// TraceSampleEvery samples every Nth classify request into Trace.
	// 0 (the default) disables request tracing entirely.
	TraceSampleEvery int
	// Log receives structured serving events. Nil discards them.
	Log *slog.Logger
}

func (c *Config) setDefaults() error {
	if c.ModelPath == "" && c.ModelsDir == "" {
		return fmt.Errorf("serve: one of Config.ModelPath or Config.ModelsDir is required")
	}
	if c.ModelPath != "" && c.ModelsDir != "" {
		return fmt.Errorf("serve: Config.ModelPath and Config.ModelsDir are mutually exclusive")
	}
	if c.ModelsDir == "" && (c.DefaultModel != "" || c.Resident != 0 || c.ResidentBytes != 0) {
		return fmt.Errorf("serve: DefaultModel/Resident/ResidentBytes need Config.ModelsDir (registry mode)")
	}
	if c.Resident < 0 || c.ResidentBytes < 0 {
		return fmt.Errorf("serve: Resident and ResidentBytes must be >= 0")
	}
	if c.ModelsDir != "" && c.Resident == 0 {
		c.Resident = 4
	}
	if c.Method != "" && !featsel.Known(c.Method) {
		return fmt.Errorf("serve: unknown feature-selection method %q", c.Method)
	}
	if _, err := hsom.ParseKernel(c.Kernel); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.TraceSampleEvery < 0 {
		return fmt.Errorf("serve: TraceSampleEvery must be >= 0, got %d", c.TraceSampleEvery)
	}
	if c.Log == nil {
		c.Log = slog.New(discardHandler{})
	}
	return nil
}

// discardHandler is a no-op slog.Handler (slog.DiscardHandler arrives
// in go1.24; this repo supports 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
