package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"temporaldoc/internal/registry"
	"temporaldoc/internal/telemetry"
)

// pubStamp mirrors the registry tests' deterministic publish clock.
func pubStamp(n int) time.Time {
	return time.Date(2024, 3, 1, 12, 0, 0, 0, time.UTC).Add(time.Duration(n) * time.Minute)
}

// buildModelsDir publishes the fixture's two snapshots as a two-tenant
// registry: tenant-a/v1 = model A, tenant-b/v1 = model B.
func buildModelsDir(t *testing.T) string {
	t.Helper()
	f := getFixture(t)
	dir := t.TempDir()
	if _, err := registry.Publish(dir, "tenant-a", "v1", f.pathA, registry.PublishOptions{CreatedAt: pubStamp(0)}); err != nil {
		t.Fatalf("publish tenant-a: %v", err)
	}
	if _, err := registry.Publish(dir, "tenant-b", "v1", f.pathB, registry.PublishOptions{CreatedAt: pubStamp(1)}); err != nil {
		t.Fatalf("publish tenant-b: %v", err)
	}
	return dir
}

// newRegistryServer builds a registry-mode Server over dir.
func newRegistryServer(t *testing.T, dir string, mod func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		ModelsDir:      dir,
		Workers:        2,
		QueueDepth:     8,
		MaxBatch:       16,
		MaxBodyBytes:   1 << 20,
		RequestTimeout: 30 * time.Second,
		Metrics:        telemetry.NewRegistry(),
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New (registry mode): %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func getModels(t *testing.T, url string) ModelsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/models")
	if err != nil {
		t.Fatalf("GET /v1/models: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/models: status %d", resp.StatusCode)
	}
	var mr ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatalf("decode /v1/models: %v", err)
	}
	return mr
}

// version finds one version entry in a models listing.
func findVersion(t *testing.T, mr ModelsResponse, model, version string) registry.VersionStatus {
	t.Helper()
	for _, m := range mr.Models {
		if m.Name != model {
			continue
		}
		for _, v := range m.Versions {
			if v.Version == version {
				return v
			}
		}
	}
	t.Fatalf("version %s/%s not in listing: %+v", model, version, mr)
	return registry.VersionStatus{}
}

func TestServeModelsSingleMode(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	mr := getModels(t, hs.URL)
	if mr.Mode != "single" {
		t.Errorf("mode %q, want single", mr.Mode)
	}
	if mr.DefaultModel != SingleModelName {
		t.Errorf("default model %q, want %q", mr.DefaultModel, SingleModelName)
	}
	if len(mr.Models) != 1 {
		t.Fatalf("models = %d, want exactly 1 (a single-model server is a one-entry registry)", len(mr.Models))
	}
	v := findVersion(t, mr, SingleModelName, SingleModelVersion)
	if v.SHA256 != f.hashA || !v.Latest || !v.Resident {
		t.Errorf("single-mode version = %+v, want hash %s, latest and resident", v, f.hashA)
	}

	// The synthetic names are also the only ones classify accepts.
	body := fmt.Sprintf(`{"text":%q, "model":%q}`, docText(&f.corpus.Test[0]), SingleModelName)
	resp, b := postJSON(t, hs.URL+"/v1/classify", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify with synthetic name: status %d: %s", resp.StatusCode, b)
	}
	cr := decodeClassify(t, b)
	if cr.Model != SingleModelName || cr.Version != SingleModelVersion {
		t.Errorf("response names %s/%s, want %s/%s", cr.Model, cr.Version, SingleModelName, SingleModelVersion)
	}
	resp, b = postJSON(t, hs.URL+"/v1/classify",
		fmt.Sprintf(`{"text":%q, "model":"other"}`, docText(&f.corpus.Test[0])))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown model on single server: status %d, want 404: %s", resp.StatusCode, b)
	}
}

func TestServeRegistryListingAndResidency(t *testing.T) {
	f := getFixture(t)
	s := newRegistryServer(t, buildModelsDir(t), nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	mr := getModels(t, hs.URL)
	if mr.Mode != "registry" {
		t.Errorf("mode %q, want registry", mr.Mode)
	}
	if mr.DefaultModel != "" {
		t.Errorf("default model %q, want empty (two models, none configured)", mr.DefaultModel)
	}
	if len(mr.Models) != 2 {
		t.Fatalf("models = %d, want 2", len(mr.Models))
	}
	va := findVersion(t, mr, "tenant-a", "v1")
	if va.SHA256 != f.hashA || va.Resident {
		t.Errorf("tenant-a/v1 = %+v, want hash %s and cold before traffic", va, f.hashA)
	}

	// First request cold-loads; the listing then reports it resident.
	resp, b := postJSON(t, hs.URL+"/v1/classify",
		fmt.Sprintf(`{"text":%q, "model":"tenant-a"}`, docText(&f.corpus.Test[0])))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify tenant-a: status %d: %s", resp.StatusCode, b)
	}
	cr := decodeClassify(t, b)
	if cr.Model != "tenant-a" || cr.Version != "v1" || cr.ModelHash != f.hashA {
		t.Errorf("response = %s/%s (%s), want tenant-a/v1 (%s)", cr.Model, cr.Version, cr.ModelHash, f.hashA)
	}
	mr = getModels(t, hs.URL)
	if v := findVersion(t, mr, "tenant-a", "v1"); !v.Resident {
		t.Error("tenant-a/v1 still cold after serving a request")
	}
	if v := findVersion(t, mr, "tenant-b", "v1"); v.Resident {
		t.Error("tenant-b/v1 resident without traffic")
	}
}

func TestServeRegistryErrors(t *testing.T) {
	f := getFixture(t)
	s := newRegistryServer(t, buildModelsDir(t), nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	doc := docText(&f.corpus.Test[0])

	// Unknown model and unknown version are 404s with a JSON error body.
	for _, body := range []string{
		fmt.Sprintf(`{"text":%q, "model":"nope"}`, doc),
		fmt.Sprintf(`{"text":%q, "model":"tenant-a", "version":"v9"}`, doc),
	} {
		resp, b := postJSON(t, hs.URL+"/v1/classify", body)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status %d, want 404: %s", resp.StatusCode, b)
		}
		var er errorResponse
		if err := json.Unmarshal(b, &er); err != nil || er.Error == "" {
			t.Errorf("404 body is not a JSON error: %s", b)
		}
	}
	// Two models, no default: an unnamed request must name one (400).
	resp, b := postJSON(t, hs.URL+"/v1/classify", fmt.Sprintf(`{"text":%q}`, doc))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unnamed request: status %d, want 400: %s", resp.StatusCode, b)
	}

	// With a configured default the same request serves.
	s2 := newRegistryServer(t, buildModelsDir(t), func(c *Config) { c.DefaultModel = "tenant-b" })
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	resp, b = postJSON(t, hs2.URL+"/v1/classify", fmt.Sprintf(`{"text":%q}`, doc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-model request: status %d: %s", resp.StatusCode, b)
	}
	if cr := decodeClassify(t, b); cr.Model != "tenant-b" || cr.ModelHash != f.hashB {
		t.Errorf("default resolved to %s (%s), want tenant-b (%s)", cr.Model, cr.ModelHash, f.hashB)
	}
}

// TestServeTenantByteParity is the multi-tenant correctness wall:
// interleaved concurrent requests to two resident models must each
// byte-match the offline output of exactly the model their embedded
// hash names — no cross-tenant mixing, ever.
func TestServeTenantByteParity(t *testing.T) {
	f := getFixture(t)
	// The whole burst goes out at once; a queue sized for it keeps
	// load-shedding (tested elsewhere) out of a correctness test.
	s := newRegistryServer(t, buildModelsDir(t), func(c *Config) { c.QueueDepth = 64 })
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	probe := &f.corpus.Test[0]
	expected := map[string]string{
		f.hashA: renderPredictions(t, f.modelA, probe),
		f.hashB: renderPredictions(t, f.modelB, probe),
	}
	wantHash := map[string]string{"tenant-a": f.hashA, "tenant-b": f.hashB}

	const perTenant = 20
	var wg sync.WaitGroup
	errs := make(chan error, 2*perTenant)
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				body := fmt.Sprintf(`{"text":%q, "model":%q, "scores":true}`, docText(probe), tenant)
				resp, err := http.Post(hs.URL+"/v1/classify", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				var cr ClassifyResponse
				if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
					errs <- fmt.Errorf("%s: decode: %w", tenant, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", tenant, resp.StatusCode)
					return
				}
				if cr.ModelHash != wantHash[tenant] {
					errs <- fmt.Errorf("%s: served hash %s, want %s", tenant, cr.ModelHash, wantHash[tenant])
					return
				}
				if got := renderResponse(&cr); got != expected[cr.ModelHash] {
					errs <- fmt.Errorf("%s: response does not match the offline output of the model its hash names:\n got %s\nwant %s",
						tenant, got, expected[cr.ModelHash])
				}
			}(tenant)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServeRescanPicksUpNewVersion(t *testing.T) {
	f := getFixture(t)
	dir := buildModelsDir(t)
	s := newRegistryServer(t, dir, nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	doc := docText(&f.corpus.Test[0])

	// Publish tenant-a/v2 (model B's snapshot) after the server started:
	// invisible until a rescan.
	if _, err := registry.Publish(dir, "tenant-a", "v2", f.pathB, registry.PublishOptions{CreatedAt: pubStamp(2)}); err != nil {
		t.Fatalf("publish v2: %v", err)
	}
	resp, b := postJSON(t, hs.URL+"/v1/classify", fmt.Sprintf(`{"text":%q, "model":"tenant-a", "version":"v2"}`, doc))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-rescan v2: status %d, want 404: %s", resp.StatusCode, b)
	}

	// POST /v1/reload in registry mode is a rescan.
	resp, b = postJSON(t, hs.URL+"/v1/reload", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d: %s", resp.StatusCode, b)
	}
	var rr RescanResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatalf("decode rescan response: %v: %s", err, b)
	}
	if rr.Mode != "registry" || rr.Models != 2 || rr.Versions != 3 {
		t.Errorf("rescan = %+v, want mode registry with 2 models / 3 versions", rr)
	}

	// v2 is now the latest: unversioned tenant-a requests resolve to it…
	if v := findVersion(t, getModels(t, hs.URL), "tenant-a", "v2"); !v.Latest {
		t.Error("tenant-a/v2 not marked latest after rescan")
	}
	resp, b = postJSON(t, hs.URL+"/v1/classify", fmt.Sprintf(`{"text":%q, "model":"tenant-a"}`, doc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rescan classify: status %d: %s", resp.StatusCode, b)
	}
	if cr := decodeClassify(t, b); cr.Version != "v2" || cr.ModelHash != f.hashB {
		t.Errorf("latest resolved to %s (%s), want v2 (%s)", cr.Version, cr.ModelHash, f.hashB)
	}
	// …while the explicit old version keeps serving the old bytes.
	resp, b = postJSON(t, hs.URL+"/v1/classify", fmt.Sprintf(`{"text":%q, "model":"tenant-a", "version":"v1"}`, doc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit v1: status %d: %s", resp.StatusCode, b)
	}
	if cr := decodeClassify(t, b); cr.Version != "v1" || cr.ModelHash != f.hashA {
		t.Errorf("explicit v1 served %s (%s), want v1 (%s)", cr.Version, cr.ModelHash, f.hashA)
	}
}

func TestServeRegistryStatzAndHealthz(t *testing.T) {
	f := getFixture(t)
	s := newRegistryServer(t, buildModelsDir(t), func(c *Config) { c.DefaultModel = "tenant-a" })
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	doc := docText(&f.corpus.Test[0])

	for _, tenant := range []string{"tenant-a", "tenant-a", "tenant-b"} {
		resp, b := postJSON(t, hs.URL+"/v1/classify", fmt.Sprintf(`{"text":%q, "model":%q}`, doc, tenant))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %s: status %d: %s", tenant, resp.StatusCode, b)
		}
	}

	resp, err := http.Get(hs.URL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr StatzResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode statz: %v", err)
	}
	if sr.ModelHash != f.hashA {
		t.Errorf("statz identity hash %q, want the default model's %q", sr.ModelHash, f.hashA)
	}
	if got := sr.Models["tenant-a"]; got.Requests != 2 || got.Docs != 2 {
		t.Errorf("tenant-a stats = %+v, want 2 requests / 2 docs", got)
	}
	if got := sr.Models["tenant-b"]; got.Requests != 1 || got.Docs != 1 {
		t.Errorf("tenant-b stats = %+v, want 1 request / 1 doc", got)
	}

	hresp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if hr.Status != "ok" || hr.Model != "tenant-a" || hr.Version != "v1" || hr.ModelHash != f.hashA {
		t.Errorf("healthz = %+v, want ok tenant-a/v1 %s", hr, f.hashA)
	}
}

func TestServeRegistryEviction(t *testing.T) {
	f := getFixture(t)
	// Resident bound of 1: serving the second tenant evicts the first,
	// and the listing proves it — while both keep answering correctly.
	s := newRegistryServer(t, buildModelsDir(t), func(c *Config) { c.Resident = 1 })
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	doc := docText(&f.corpus.Test[0])

	for i, tenant := range []string{"tenant-a", "tenant-b", "tenant-a"} {
		resp, b := postJSON(t, hs.URL+"/v1/classify", fmt.Sprintf(`{"text":%q, "model":%q}`, doc, tenant))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d (%s): status %d: %s", i, tenant, resp.StatusCode, b)
		}
		wantHash := f.hashA
		if tenant == "tenant-b" {
			wantHash = f.hashB
		}
		if cr := decodeClassify(t, b); cr.ModelHash != wantHash {
			t.Errorf("request %d (%s): hash %s, want %s", i, tenant, cr.ModelHash, wantHash)
		}
		mr := getModels(t, hs.URL)
		other := "tenant-b"
		if tenant == "tenant-b" {
			other = "tenant-a"
		}
		if v := findVersion(t, mr, tenant, "v1"); !v.Resident {
			t.Errorf("request %d: %s not resident after serving it", i, tenant)
		}
		if v := findVersion(t, mr, other, "v1"); v.Resident {
			t.Errorf("request %d: %s resident despite the bound of 1", i, other)
		}
	}
	if got := s.cfg.Metrics.Counter("registry.evictions").Value(); got != 2 {
		t.Errorf("registry.evictions = %d, want 2", got)
	}
}

func TestServeConfigModeValidation(t *testing.T) {
	f := getFixture(t)
	dir := buildModelsDir(t)
	bad := []Config{
		{},                                         // neither mode
		{ModelPath: f.pathA, ModelsDir: dir},       // both modes
		{ModelPath: f.pathA, DefaultModel: "x"},    // registry knob without registry mode
		{ModelPath: f.pathA, Resident: 2},          // ditto
		{ModelsDir: dir, Resident: -1},             // negative bound
		{ModelsDir: dir, ResidentBytes: -1},        // negative bound
		{ModelsDir: dir, DefaultModel: "bad/name"}, // unsafe default name fails at Open
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
