package serve

import (
	"strings"
	"testing"
	"unicode/utf8"

	"temporaldoc/internal/textproc"
)

// FuzzClassifyRequest throws arbitrary bytes at the request decoder —
// the one piece of the server that parses attacker-controlled input.
// The decoder must never panic; when it accepts a body, the resulting
// document list must honour the batch invariants the handler relies
// on, and the training preprocessor must survive tokenising whatever
// text was accepted (UTF-8 edge cases included).
func FuzzClassifyRequest(f *testing.F) {
	seeds := []string{
		`{"text":"oil prices rose"}`,
		`{"id":"d1","text":"grain shipment","scores":true}`,
		`{"documents":[{"text":"one"},{"id":"b","text":"two"}]}`,
		`{"documents":[]}`,
		`{"text":"a","documents":[{"text":"b"}]}`,
		`{"text":""}`,
		`{}`,
		``,
		`[]`,
		`null`,
		`{"text":"a"} trailing`,
		`{"text":"a"}{"text":"b"}`,
		`{"unknown":1}`,
		`{"text":42}`,
		`{"documents":[{"text":"x"},{"text":"y"},{"text":"z"},{"text":"w"}]}`,
		`{"text":"café ☃ snowman"}`,
		"{\"text\":\"\xff\xfe invalid utf8\"}",
		`{"text":"` + strings.Repeat("a", 2048) + `"}`,
		"{\"documents\":[{\"id\":\"\x00\",\"text\":\"nul id\"}]}",
		`{"text":"MixedCase STOP the And Of 123 x"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	pre := textproc.NewPreprocessor(textproc.Options{})
	const maxBatch = 3
	f.Fuzz(func(t *testing.T, data []byte) {
		req, docs, err := decodeClassifyRequest(strings.NewReader(string(data)), maxBatch)
		if err != nil {
			if req != nil || docs != nil {
				t.Fatalf("decoder returned data alongside error %v", err)
			}
			return
		}
		if req == nil {
			t.Fatal("decoder accepted a body but returned a nil request")
		}
		if len(docs) == 0 {
			t.Fatal("decoder accepted a body but produced no documents")
		}
		if len(docs) > maxBatch {
			t.Fatalf("decoder accepted %d documents, limit is %d", len(docs), maxBatch)
		}
		if req.Text != "" {
			if len(docs) != 1 || docs[0].Text != req.Text || docs[0].ID != req.ID {
				t.Fatalf("single-form request normalised to %+v", docs)
			}
		}
		// Accepted text must survive the training-time tokenizer, and the
		// tokenizer must emit valid UTF-8 even for mangled input.
		for _, d := range docs {
			for _, w := range pre.Process(d.Text) {
				if !utf8.ValidString(w) {
					t.Fatalf("preprocessor emitted invalid UTF-8 token %q from %q", w, d.Text)
				}
			}
		}
	})
}
