// Package serve is the long-lived serving layer of the temporal
// document classifier: a dependency-free net/http JSON API over one or
// many trained, persisted core.Models.
//
// Three design rules shape it:
//
//   - One pinned snapshot per request. Every request resolves its model
//     snapshot exactly once — the atomically swappable handle in
//     single-model mode, the registry's resident cache in registry mode
//     — and scores its whole batch with it, so hot-reloads and cache
//     evictions can land at any moment without a response ever mixing
//     two models. Responses embed the snapshot's SHA-256 to make that
//     provable end to end.
//   - Bounded concurrency with load shedding. Scoring runs on a fixed
//     worker pool behind a bounded queue; when the queue is full the
//     server answers 503 with Retry-After instead of stacking
//     goroutines, and per-request deadlines turn stuck work into 504s.
//   - The scoring hot path allocates nothing per document beyond the
//     response itself: machines come from the model's pool, encodings
//     from its cache, predictions land in one per-job buffer.
//
// Two serving modes share the API. Config.ModelPath serves one model
// (hot-reloadable via SIGHUP or POST /v1/reload, exactly as before);
// Config.ModelsDir serves a model registry — classify requests may name
// a "model" (and "version"), cold models load lazily under single-flight
// into an LRU of resident models, and reloads become registry rescans.
// A single-model server presents itself as a one-entry registry on
// GET /v1/models, so clients never need two shapes.
//
// Endpoints:
//
//	POST /v1/classify  single {"text": ...} or batch {"documents": [...]},
//	                   optional "model" and "version" tenant selection
//	GET  /v1/healthz   liveness plus the default model hash
//	GET  /v1/models    registry catalog with resident/cold status
//	GET  /v1/modelz    model identity and a telemetry snapshot
//	GET  /v1/statz     per-stage latency percentiles, throughput, error
//	                   rates, per-model request counts
//	POST /v1/reload    re-read the snapshot file / rescan the registry
//
// Every request carries an id (client-supplied X-Request-ID or
// generated), echoed on the response; a stage recorder splits each
// classify request into decode → queue-wait → classify → write and can
// sample requests into a JSONL trace (Config.Trace). /v1/statz turns
// the stage histograms into interpolated p50/p90/p95/p99 — the
// server-side half of the `tdc loadgen` benchmark harness.
package serve

import (
	"net/http"
	"time"

	"temporaldoc/internal/hsom"
	"temporaldoc/internal/registry"
	"temporaldoc/internal/telemetry"
	"temporaldoc/internal/textproc"
)

// Server is one classification service instance. Create with New,
// mount via Handler, stop with Close.
type Server struct {
	cfg Config
	// Exactly one of handle (single-model mode) and registry (registry
	// mode) is non-nil; resolveSnapshot dispatches on it.
	handle   *Handle
	registry *registry.Registry
	pool     *pool
	pre      *textproc.Preprocessor
	mux      *http.ServeMux
	handler  http.Handler
	stages   *telemetry.StageRecorder
	stats    *modelStats
	met      serverMetrics
	// started anchors /v1/statz uptime and throughput; reporting only.
	started time.Time
}

// serverMetrics holds the pre-resolved handles of the request path.
type serverMetrics struct {
	timeouts *telemetry.Counter
	panics   *telemetry.Counter
}

// New loads the model snapshot (or opens the model registry) and
// assembles a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		pre:    textproc.NewPreprocessor(textproc.Options{}),
		stages: telemetry.NewStageRecorder(cfg.Metrics, "serve.stage", cfg.Trace, cfg.TraceSampleEvery),
		stats:  newModelStats(),
		met: serverMetrics{
			timeouts: cfg.Metrics.Counter("serve.timeouts"),
			panics:   cfg.Metrics.Counter("serve.panics"),
		},
	}
	if cfg.ModelsDir != "" {
		reg, err := registry.Open(registry.Config{
			Root:             cfg.ModelsDir,
			Default:          cfg.DefaultModel,
			MaxResident:      cfg.Resident,
			MaxResidentBytes: cfg.ResidentBytes,
			Method:           cfg.Method,
			Kernel:           hsom.Kernel(cfg.Kernel),
			Metrics:          cfg.Metrics,
		})
		if err != nil {
			return nil, err
		}
		s.registry = reg
	} else {
		handle, err := OpenHandle(cfg.ModelPath, cfg.Method, hsom.Kernel(cfg.Kernel), cfg.Metrics)
		if err != nil {
			return nil, err
		}
		s.handle = handle
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, cfg.Metrics, s.stages, s.stats)
	//lint:ignore determinism serving metadata: the start stamp only feeds /v1/statz uptime, never model state
	s.started = time.Now()
	s.mux = http.NewServeMux()
	// recoverPanics sits inside InstrumentHandler so a recovered 500
	// still lands in the per-route status counters and latency histogram.
	mount := func(route string, h http.HandlerFunc) http.Handler {
		return cfg.Metrics.InstrumentHandler(route, s.recoverPanics(h))
	}
	s.mux.Handle("/v1/classify", mount("classify", s.handleClassify))
	s.mux.Handle("/v1/healthz", mount("healthz", s.handleHealthz))
	s.mux.Handle("/v1/models", mount("models", s.handleModels))
	s.mux.Handle("/v1/modelz", mount("modelz", s.handleModelz))
	s.mux.Handle("/v1/statz", mount("statz", s.handleStatz))
	s.mux.Handle("/v1/reload", mount("reload", s.handleReload))
	s.handler = withRequestID(s.mux)
	if s.registry != nil {
		models := s.registry.Models()
		versions := 0
		for _, m := range models {
			versions += len(m.Versions)
		}
		cfg.Log.Info("registry opened", "dir", cfg.ModelsDir, "models", len(models), "versions", versions,
			"resident_limit", cfg.Resident, "workers", cfg.Workers, "queue", cfg.QueueDepth)
	} else {
		info := s.handle.Current().Info
		cfg.Log.Info("model loaded", "path", info.Path, "sha256", info.SHA256, "bytes", info.Bytes,
			"workers", cfg.Workers, "queue", cfg.QueueDepth)
	}
	return s, nil
}

// Handler returns the server's HTTP handler (all /v1/ endpoints,
// wrapped in the request-id middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// MultiTenant reports whether the server runs in registry mode.
func (s *Server) MultiTenant() bool { return s.registry != nil }

// Current returns the model snapshot serving right now in single-model
// mode, nil in registry mode (where "current" is per-tenant — see
// /v1/models).
func (s *Server) Current() *ModelSnapshot {
	if s.handle == nil {
		return nil
	}
	return s.handle.Current()
}

// Reload refreshes the serving state: in single-model mode it re-reads
// the snapshot file and swaps it in (previous model keeps serving on
// error); in registry mode it rescans the registry and returns a nil
// snapshot. Wired to SIGHUP and POST /v1/reload.
func (s *Server) Reload() (*ModelSnapshot, error) {
	if s.registry != nil {
		_, err := s.registry.Scan()
		return nil, err
	}
	return s.handle.Reload()
}

// Rescan re-reads the registry directory (registry mode's reload) and
// reports what the scan accepted and skipped.
func (s *Server) Rescan() (registry.ScanStats, error) {
	if s.registry == nil {
		return registry.ScanStats{}, errSingleModeRescan
	}
	return s.registry.Scan()
}

// Close drains the worker pool. Call after the HTTP listener has shut
// down; queued jobs finish, new submissions panic — the HTTP layer
// must already be stopped.
func (s *Server) Close() { s.pool.close() }
