// Package serve is the long-lived serving layer of the temporal
// document classifier: a dependency-free net/http JSON API over a
// trained, persisted core.Model.
//
// Three design rules shape it:
//
//   - One atomically swappable model handle. Every request pins the
//     current ModelSnapshot exactly once and scores its whole batch
//     with it, so hot-reloads (SIGHUP or POST /v1/reload) can land at
//     any moment without a response ever mixing two models. Responses
//     embed the snapshot's SHA-256 to make that provable end to end.
//   - Bounded concurrency with load shedding. Scoring runs on a fixed
//     worker pool behind a bounded queue; when the queue is full the
//     server answers 503 with Retry-After instead of stacking
//     goroutines, and per-request deadlines turn stuck work into 504s.
//   - The scoring hot path allocates nothing per document beyond the
//     response itself: machines come from the model's pool, encodings
//     from its cache, predictions land in one per-job buffer.
//
// Endpoints:
//
//	POST /v1/classify  single {"text": ...} or batch {"documents": [...]}
//	GET  /v1/healthz   liveness plus the serving model hash
//	GET  /v1/modelz    model identity and a telemetry snapshot
//	GET  /v1/statz     per-stage latency percentiles, throughput, error rates
//	POST /v1/reload    re-read the snapshot file and swap it in
//
// Every request carries an id (client-supplied X-Request-ID or
// generated), echoed on the response; a stage recorder splits each
// classify request into decode → queue-wait → classify → write and can
// sample requests into a JSONL trace (Config.Trace). /v1/statz turns
// the stage histograms into interpolated p50/p90/p95/p99 — the
// server-side half of the `tdc loadgen` benchmark harness.
package serve

import (
	"net/http"
	"time"

	"temporaldoc/internal/hsom"
	"temporaldoc/internal/telemetry"
	"temporaldoc/internal/textproc"
)

// Server is one classification service instance. Create with New,
// mount via Handler, stop with Close.
type Server struct {
	cfg     Config
	handle  *Handle
	pool    *pool
	pre     *textproc.Preprocessor
	mux     *http.ServeMux
	handler http.Handler
	stages  *telemetry.StageRecorder
	met     serverMetrics
	// started anchors /v1/statz uptime and throughput; reporting only.
	started time.Time
}

// serverMetrics holds the pre-resolved handles of the request path.
type serverMetrics struct {
	timeouts *telemetry.Counter
	panics   *telemetry.Counter
}

// New loads the model snapshot and assembles a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	handle, err := OpenHandle(cfg.ModelPath, cfg.Method, hsom.Kernel(cfg.Kernel), cfg.Metrics)
	if err != nil {
		return nil, err
	}
	stages := telemetry.NewStageRecorder(cfg.Metrics, "serve.stage", cfg.Trace, cfg.TraceSampleEvery)
	s := &Server{
		cfg:    cfg,
		handle: handle,
		pool:   newPool(cfg.Workers, cfg.QueueDepth, handle, cfg.Metrics, stages),
		pre:    textproc.NewPreprocessor(textproc.Options{}),
		stages: stages,
		met: serverMetrics{
			timeouts: cfg.Metrics.Counter("serve.timeouts"),
			panics:   cfg.Metrics.Counter("serve.panics"),
		},
	}
	//lint:ignore determinism serving metadata: the start stamp only feeds /v1/statz uptime, never model state
	s.started = time.Now()
	s.mux = http.NewServeMux()
	// recoverPanics sits inside InstrumentHandler so a recovered 500
	// still lands in the per-route status counters and latency histogram.
	mount := func(route string, h http.HandlerFunc) http.Handler {
		return cfg.Metrics.InstrumentHandler(route, s.recoverPanics(h))
	}
	s.mux.Handle("/v1/classify", mount("classify", s.handleClassify))
	s.mux.Handle("/v1/healthz", mount("healthz", s.handleHealthz))
	s.mux.Handle("/v1/modelz", mount("modelz", s.handleModelz))
	s.mux.Handle("/v1/statz", mount("statz", s.handleStatz))
	s.mux.Handle("/v1/reload", mount("reload", s.handleReload))
	s.handler = withRequestID(s.mux)
	info := handle.Current().Info
	cfg.Log.Info("model loaded", "path", info.Path, "sha256", info.SHA256, "bytes", info.Bytes,
		"workers", cfg.Workers, "queue", cfg.QueueDepth)
	return s, nil
}

// Handler returns the server's HTTP handler (all /v1/ endpoints,
// wrapped in the request-id middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// Current returns the model snapshot serving right now.
func (s *Server) Current() *ModelSnapshot { return s.handle.Current() }

// Reload re-reads the snapshot file and swaps it in; the previous
// model keeps serving on any error. Wired to SIGHUP and POST
// /v1/reload.
func (s *Server) Reload() (*ModelSnapshot, error) { return s.handle.Reload() }

// Close drains the worker pool. Call after the HTTP listener has shut
// down; queued jobs finish, new submissions panic — the HTTP layer
// must already be stopped.
func (s *Server) Close() { s.pool.close() }
