// Package serve is the long-lived serving layer of the temporal
// document classifier: a dependency-free net/http JSON API over a
// trained, persisted core.Model.
//
// Three design rules shape it:
//
//   - One atomically swappable model handle. Every request pins the
//     current ModelSnapshot exactly once and scores its whole batch
//     with it, so hot-reloads (SIGHUP or POST /v1/reload) can land at
//     any moment without a response ever mixing two models. Responses
//     embed the snapshot's SHA-256 to make that provable end to end.
//   - Bounded concurrency with load shedding. Scoring runs on a fixed
//     worker pool behind a bounded queue; when the queue is full the
//     server answers 503 with Retry-After instead of stacking
//     goroutines, and per-request deadlines turn stuck work into 504s.
//   - The scoring hot path allocates nothing per document beyond the
//     response itself: machines come from the model's pool, encodings
//     from its cache, predictions land in one per-job buffer.
//
// Endpoints:
//
//	POST /v1/classify  single {"text": ...} or batch {"documents": [...]}
//	GET  /v1/healthz   liveness plus the serving model hash
//	GET  /v1/modelz    model identity and a telemetry snapshot
//	POST /v1/reload    re-read the snapshot file and swap it in
package serve

import (
	"net/http"

	"temporaldoc/internal/hsom"
	"temporaldoc/internal/telemetry"
	"temporaldoc/internal/textproc"
)

// Server is one classification service instance. Create with New,
// mount via Handler, stop with Close.
type Server struct {
	cfg    Config
	handle *Handle
	pool   *pool
	pre    *textproc.Preprocessor
	mux    *http.ServeMux
	met    serverMetrics
}

// serverMetrics holds the pre-resolved handles of the request path.
type serverMetrics struct {
	timeouts *telemetry.Counter
}

// New loads the model snapshot and assembles a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	handle, err := OpenHandle(cfg.ModelPath, cfg.Method, hsom.Kernel(cfg.Kernel), cfg.Metrics)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		handle: handle,
		pool:   newPool(cfg.Workers, cfg.QueueDepth, handle, cfg.Metrics),
		pre:    textproc.NewPreprocessor(textproc.Options{}),
		met:    serverMetrics{timeouts: cfg.Metrics.Counter("serve.timeouts")},
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("/v1/classify", cfg.Metrics.InstrumentHandler("classify", http.HandlerFunc(s.handleClassify)))
	s.mux.Handle("/v1/healthz", cfg.Metrics.InstrumentHandler("healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("/v1/modelz", cfg.Metrics.InstrumentHandler("modelz", http.HandlerFunc(s.handleModelz)))
	s.mux.Handle("/v1/reload", cfg.Metrics.InstrumentHandler("reload", http.HandlerFunc(s.handleReload)))
	info := handle.Current().Info
	cfg.Log.Info("model loaded", "path", info.Path, "sha256", info.SHA256, "bytes", info.Bytes,
		"workers", cfg.Workers, "queue", cfg.QueueDepth)
	return s, nil
}

// Handler returns the server's HTTP handler (all /v1/ endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// Current returns the model snapshot serving right now.
func (s *Server) Current() *ModelSnapshot { return s.handle.Current() }

// Reload re-reads the snapshot file and swaps it in; the previous
// model keeps serving on any error. Wired to SIGHUP and POST
// /v1/reload.
func (s *Server) Reload() (*ModelSnapshot, error) { return s.handle.Reload() }

// Close drains the worker pool. Call after the HTTP listener has shut
// down; queued jobs finish, new submissions panic — the HTTP layer
// must already be stopped.
func (s *Server) Close() { s.pool.close() }
