package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/registry"
	"temporaldoc/internal/telemetry"
)

// ClassifyDocument is one document of a classify request.
type ClassifyDocument struct {
	// ID is an optional caller-chosen identifier echoed back in the
	// matching result.
	ID string `json:"id,omitempty"`
	// Text is the raw document text; the server tokenises it with the
	// same preprocessor the training corpus went through.
	Text string `json:"text"`
}

// ClassifyRequest is the POST /v1/classify body. Exactly one form must
// be used: the single-document form (Text, optionally ID) or the batch
// form (Documents).
type ClassifyRequest struct {
	ID        string             `json:"id,omitempty"`
	Text      string             `json:"text,omitempty"`
	Documents []ClassifyDocument `json:"documents,omitempty"`
	// Model and Version select the serving model in registry mode; both
	// default (empty model resolves to the configured or sole default,
	// empty version to the model's latest). A single-model server only
	// accepts its own synthetic names, SingleModelName/SingleModelVersion.
	Model   string `json:"model,omitempty"`
	Version string `json:"version,omitempty"`
	// Scores asks for per-category scores and thresholds decisions in
	// addition to the in-class category list.
	Scores bool `json:"scores,omitempty"`
}

// PredictionJSON is one category's decision in a classify response.
type PredictionJSON struct {
	Category string  `json:"category"`
	Score    float64 `json:"score"`
	InClass  bool    `json:"in_class"`
}

// DocResult is one document's classification.
type DocResult struct {
	ID string `json:"id,omitempty"`
	// Categories are the in-class categories in the corpus inventory
	// order (empty slice, not null, when none clear their threshold).
	Categories []string `json:"categories"`
	// Predictions carries every category's score when the request set
	// "scores": true.
	Predictions []PredictionJSON `json:"predictions,omitempty"`
}

// ClassifyResponse is the POST /v1/classify reply. ModelHash is the
// SHA-256 of the snapshot file that scored every document in Results —
// one hash, because the whole request is pinned to one model even when
// a hot-reload or cache eviction lands mid-flight. Model and Version
// name the resolved snapshot, so a request that left them to default
// learns what it was actually served by.
type ClassifyResponse struct {
	ModelHash string      `json:"model_hash"`
	Model     string      `json:"model"`
	Version   string      `json:"version"`
	Results   []DocResult `json:"results"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// decodeClassifyRequest parses and validates a classify body, returning
// the normalised document list. It rejects: malformed JSON, trailing
// data after the JSON value, mixing the single and batch forms, neither
// form, and batches beyond maxBatch. It is the fuzzing surface of the
// server — it must never panic, whatever the bytes.
func decodeClassifyRequest(r io.Reader, maxBatch int) (*ClassifyRequest, []ClassifyDocument, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ClassifyRequest
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("invalid JSON: %w", err)
	}
	// A second value (or non-whitespace trailing garbage) means the
	// body was not one JSON document.
	if dec.More() {
		return nil, nil, errors.New("invalid JSON: trailing data after request object")
	}
	single := req.Text != ""
	switch {
	case single && req.Documents != nil:
		return nil, nil, errors.New(`use either "text" or "documents", not both`)
	case single:
		return &req, []ClassifyDocument{{ID: req.ID, Text: req.Text}}, nil
	case req.Documents == nil:
		return nil, nil, errors.New(`request needs "text" or "documents"`)
	case len(req.Documents) == 0:
		return nil, nil, errors.New(`"documents" must not be empty`)
	case len(req.Documents) > maxBatch:
		return nil, nil, fmt.Errorf(`"documents" has %d entries, limit is %d`, len(req.Documents), maxBatch)
	}
	return &req, req.Documents, nil
}

// tokenize turns request documents into corpus documents with the
// training-time preprocessor.
func (s *Server) tokenize(in []ClassifyDocument) []corpus.Document {
	docs := make([]corpus.Document, len(in))
	for i, d := range in {
		docs[i] = corpus.Document{ID: d.ID, Words: s.pre.Process(d.Text)}
	}
	return docs
}

// handleClassify is POST /v1/classify. The stage trace splits the
// request into decode (parse + tokenise, measured here), queue-wait and
// classify (measured by the worker, copied off the job after done
// closes), and write (response render + encode). Every exit path
// finishes the trace with the status it answered, so sampled JSONL
// records cover sheds and timeouts too — exactly the requests a loadgen
// run needs to explain.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	tr := s.stages.Begin()
	reqID := RequestIDFrom(r.Context())
	decodeStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, reqDocs, err := decodeClassifyRequest(body, s.cfg.MaxBatch)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			tr.Finish(reqID, 0, "", http.StatusRequestEntityTooLarge)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		tr.Finish(reqID, 0, "", http.StatusBadRequest)
		return
	}

	docs := s.tokenize(reqDocs)
	tr.Observe(telemetry.StageDecode, time.Since(decodeStart))

	// Pin the snapshot before queueing: a cold registry model loads here,
	// on the request goroutine under the request deadline, so a stampede
	// of cold requests never ties up scoring workers.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	snap, status, err := s.resolveSnapshot(ctx, req.Model, req.Version)
	if err != nil {
		if status == http.StatusGatewayTimeout {
			s.met.timeouts.Inc()
		}
		writeError(w, status, err.Error())
		tr.Finish(reqID, len(reqDocs), "", status)
		return
	}

	j := &job{ctx: ctx, docs: docs, snap: snap, done: make(chan struct{})}
	if err := s.pool.submit(j); err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusServiceUnavailable, err.Error())
		tr.Finish(reqID, len(reqDocs), "", http.StatusServiceUnavailable)
		return
	}

	select {
	case <-j.done:
	case <-ctx.Done():
		// The worker may still be scoring; it owns the job's fields, we
		// stop reading them. It will observe the expired context at its
		// next per-document check.
		s.met.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, "classification timed out")
		tr.Finish(reqID, len(reqDocs), "", http.StatusGatewayTimeout)
		return
	}
	// done is closed: the job's fields are ours again. The worker
	// already observed queue-wait and classify into the stage
	// histograms; Record only copies them into this trace's record.
	tr.Record(telemetry.StageQueue, j.queueWait)
	tr.Record(telemetry.StageClassify, j.classifyDur)
	if j.err != nil {
		if errors.Is(j.err, context.DeadlineExceeded) || errors.Is(j.err, context.Canceled) {
			s.met.timeouts.Inc()
			writeError(w, http.StatusGatewayTimeout, "classification timed out")
			tr.Finish(reqID, len(reqDocs), "", http.StatusGatewayTimeout)
			return
		}
		writeError(w, http.StatusInternalServerError, j.err.Error())
		tr.Finish(reqID, len(reqDocs), "", http.StatusInternalServerError)
		return
	}

	writeStart := time.Now()
	resp := ClassifyResponse{
		ModelHash: j.snap.Info.SHA256,
		Model:     j.snap.Name,
		Version:   j.snap.Version,
		Results:   make([]DocResult, len(j.results)),
	}
	for i, preds := range j.results {
		res := DocResult{ID: reqDocs[i].ID, Categories: []string{}}
		for _, p := range preds {
			if p.InClass {
				res.Categories = append(res.Categories, p.Category)
			}
		}
		if req.Scores {
			res.Predictions = make([]PredictionJSON, len(preds))
			for k, p := range preds {
				res.Predictions[k] = PredictionJSON{Category: p.Category, Score: p.Score, InClass: p.InClass}
			}
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
	tr.Observe(telemetry.StageWrite, time.Since(writeStart))
	tr.Finish(reqID, len(reqDocs), j.snap.Info.SHA256, http.StatusOK)
}

// HealthResponse is the GET /v1/healthz reply. In registry mode the
// hash identifies the default model's latest published version without
// loading it; Model and Version name it. With no resolvable default
// (several models, none configured) the identity fields stay empty —
// the server is still healthy, it just has no single identity.
type HealthResponse struct {
	Status    string `json:"status"`
	ModelHash string `json:"model_hash"`
	Model     string `json:"model,omitempty"`
	Version   string `json:"version,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := HealthResponse{Status: "ok"}
	if s.registry != nil {
		if model, version, sha, ok := s.registry.DefaultVersionInfo(); ok {
			resp.Model, resp.Version, resp.ModelHash = model, version, sha
		}
	} else {
		resp.Model, resp.Version = SingleModelName, SingleModelVersion
		resp.ModelHash = s.handle.Current().Info.SHA256
	}
	writeJSON(w, http.StatusOK, resp)
}

// ModelzResponse is the GET /v1/modelz reply in single-model mode: the
// serving model's identity plus a point-in-time telemetry snapshot.
type ModelzResponse struct {
	Mode          string         `json:"mode"`
	ModelHash     string         `json:"model_hash"`
	SnapshotPath  string         `json:"snapshot_path"`
	SnapshotBytes int64          `json:"snapshot_bytes"`
	LoadedAt      time.Time      `json:"loaded_at"`
	FeatureMethod string         `json:"feature_method"`
	Categories    []string       `json:"categories"`
	Metrics       map[string]any `json:"metrics,omitempty"`
}

// RegistryModelzResponse is the GET /v1/modelz reply in registry mode:
// the full catalog (the /v1/models view) plus the telemetry snapshot.
type RegistryModelzResponse struct {
	Mode         string                 `json:"mode"`
	DefaultModel string                 `json:"default_model,omitempty"`
	Models       []registry.ModelStatus `json:"models"`
	Metrics      map[string]any         `json:"metrics,omitempty"`
}

func (s *Server) handleModelz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var metrics map[string]any
	if s.cfg.Metrics != nil {
		ms := s.cfg.Metrics.Snapshot()
		metrics = map[string]any{
			"counters":   ms.Counters,
			"gauges":     ms.Gauges,
			"histograms": ms.Histograms,
		}
	}
	if s.registry != nil {
		resp := RegistryModelzResponse{Mode: "registry", Models: s.registry.Models(), Metrics: metrics}
		if def, ok := s.registry.Default(); ok {
			resp.DefaultModel = def
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	snap := s.handle.Current()
	writeJSON(w, http.StatusOK, ModelzResponse{
		Mode:          "single",
		ModelHash:     snap.Info.SHA256,
		SnapshotPath:  snap.Info.Path,
		SnapshotBytes: snap.Info.Bytes,
		LoadedAt:      snap.LoadedAt,
		FeatureMethod: string(snap.Model.FeatureMethod()),
		Categories:    snap.Model.Categories(),
		Metrics:       metrics,
	})
}

// ReloadResponse is the POST /v1/reload reply in single-model mode.
type ReloadResponse struct {
	Mode         string `json:"mode"`
	ModelHash    string `json:"model_hash"`
	PreviousHash string `json:"previous_hash"`
	Changed      bool   `json:"changed"`
}

// RescanResponse is the POST /v1/reload reply in registry mode, where a
// reload means re-reading the registry directory.
type RescanResponse struct {
	Mode string `json:"mode"`
	registry.ScanStats
}

// errSingleModeRescan answers Rescan on a single-model server.
var errSingleModeRescan = errors.New("serve: not in registry mode (rescan needs Config.ModelsDir)")

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.registry != nil {
		stats, err := s.registry.Scan()
		if err != nil {
			s.cfg.Log.Error("rescan failed", "dir", s.cfg.ModelsDir, "err", err)
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		s.cfg.Log.Info("registry rescanned", "models", stats.Models, "versions", stats.Versions,
			"skipped", stats.Skipped, "temp_dirs", stats.TempDirs)
		writeJSON(w, http.StatusOK, RescanResponse{Mode: "registry", ScanStats: stats})
		return
	}
	prev := s.handle.Current()
	snap, err := s.handle.Reload()
	if err != nil {
		s.cfg.Log.Error("reload failed", "path", s.cfg.ModelPath, "err", err)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.cfg.Log.Info("model reloaded", "sha256", snap.Info.SHA256, "bytes", snap.Info.Bytes)
	writeJSON(w, http.StatusOK, ReloadResponse{
		Mode:         "single",
		ModelHash:    snap.Info.SHA256,
		PreviousHash: prev.Info.SHA256,
		Changed:      snap.Info.SHA256 != prev.Info.SHA256,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	// The response went over the wire (or the client is gone) — nothing
	// actionable remains, so the encode error is deliberately dropped.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// retryAfterSeconds renders the back-off hint, rounding up so a
// sub-second hint never becomes "Retry-After: 0".
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
