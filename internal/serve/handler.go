package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/telemetry"
)

// ClassifyDocument is one document of a classify request.
type ClassifyDocument struct {
	// ID is an optional caller-chosen identifier echoed back in the
	// matching result.
	ID string `json:"id,omitempty"`
	// Text is the raw document text; the server tokenises it with the
	// same preprocessor the training corpus went through.
	Text string `json:"text"`
}

// ClassifyRequest is the POST /v1/classify body. Exactly one form must
// be used: the single-document form (Text, optionally ID) or the batch
// form (Documents).
type ClassifyRequest struct {
	ID        string             `json:"id,omitempty"`
	Text      string             `json:"text,omitempty"`
	Documents []ClassifyDocument `json:"documents,omitempty"`
	// Scores asks for per-category scores and thresholds decisions in
	// addition to the in-class category list.
	Scores bool `json:"scores,omitempty"`
}

// PredictionJSON is one category's decision in a classify response.
type PredictionJSON struct {
	Category string  `json:"category"`
	Score    float64 `json:"score"`
	InClass  bool    `json:"in_class"`
}

// DocResult is one document's classification.
type DocResult struct {
	ID string `json:"id,omitempty"`
	// Categories are the in-class categories in the corpus inventory
	// order (empty slice, not null, when none clear their threshold).
	Categories []string `json:"categories"`
	// Predictions carries every category's score when the request set
	// "scores": true.
	Predictions []PredictionJSON `json:"predictions,omitempty"`
}

// ClassifyResponse is the POST /v1/classify reply. ModelHash is the
// SHA-256 of the snapshot file that scored every document in Results —
// one hash, because the whole request is pinned to one model even when
// a hot-reload lands mid-flight.
type ClassifyResponse struct {
	ModelHash string      `json:"model_hash"`
	Results   []DocResult `json:"results"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// decodeClassifyRequest parses and validates a classify body, returning
// the normalised document list. It rejects: malformed JSON, trailing
// data after the JSON value, mixing the single and batch forms, neither
// form, and batches beyond maxBatch. It is the fuzzing surface of the
// server — it must never panic, whatever the bytes.
func decodeClassifyRequest(r io.Reader, maxBatch int) (*ClassifyRequest, []ClassifyDocument, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ClassifyRequest
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("invalid JSON: %w", err)
	}
	// A second value (or non-whitespace trailing garbage) means the
	// body was not one JSON document.
	if dec.More() {
		return nil, nil, errors.New("invalid JSON: trailing data after request object")
	}
	single := req.Text != ""
	switch {
	case single && req.Documents != nil:
		return nil, nil, errors.New(`use either "text" or "documents", not both`)
	case single:
		return &req, []ClassifyDocument{{ID: req.ID, Text: req.Text}}, nil
	case req.Documents == nil:
		return nil, nil, errors.New(`request needs "text" or "documents"`)
	case len(req.Documents) == 0:
		return nil, nil, errors.New(`"documents" must not be empty`)
	case len(req.Documents) > maxBatch:
		return nil, nil, fmt.Errorf(`"documents" has %d entries, limit is %d`, len(req.Documents), maxBatch)
	}
	return &req, req.Documents, nil
}

// tokenize turns request documents into corpus documents with the
// training-time preprocessor.
func (s *Server) tokenize(in []ClassifyDocument) []corpus.Document {
	docs := make([]corpus.Document, len(in))
	for i, d := range in {
		docs[i] = corpus.Document{ID: d.ID, Words: s.pre.Process(d.Text)}
	}
	return docs
}

// handleClassify is POST /v1/classify. The stage trace splits the
// request into decode (parse + tokenise, measured here), queue-wait and
// classify (measured by the worker, copied off the job after done
// closes), and write (response render + encode). Every exit path
// finishes the trace with the status it answered, so sampled JSONL
// records cover sheds and timeouts too — exactly the requests a loadgen
// run needs to explain.
func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	tr := s.stages.Begin()
	reqID := RequestIDFrom(r.Context())
	decodeStart := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, reqDocs, err := decodeClassifyRequest(body, s.cfg.MaxBatch)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			tr.Finish(reqID, 0, "", http.StatusRequestEntityTooLarge)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		tr.Finish(reqID, 0, "", http.StatusBadRequest)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	j := &job{ctx: ctx, docs: s.tokenize(reqDocs), done: make(chan struct{})}
	tr.Observe(telemetry.StageDecode, time.Since(decodeStart))
	if err := s.pool.submit(j); err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusServiceUnavailable, err.Error())
		tr.Finish(reqID, len(reqDocs), "", http.StatusServiceUnavailable)
		return
	}

	select {
	case <-j.done:
	case <-ctx.Done():
		// The worker may still be scoring; it owns the job's fields, we
		// stop reading them. It will observe the expired context at its
		// next per-document check.
		s.met.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, "classification timed out")
		tr.Finish(reqID, len(reqDocs), "", http.StatusGatewayTimeout)
		return
	}
	// done is closed: the job's fields are ours again. The worker
	// already observed queue-wait and classify into the stage
	// histograms; Record only copies them into this trace's record.
	tr.Record(telemetry.StageQueue, j.queueWait)
	tr.Record(telemetry.StageClassify, j.classifyDur)
	if j.err != nil {
		if errors.Is(j.err, context.DeadlineExceeded) || errors.Is(j.err, context.Canceled) {
			s.met.timeouts.Inc()
			writeError(w, http.StatusGatewayTimeout, "classification timed out")
			tr.Finish(reqID, len(reqDocs), "", http.StatusGatewayTimeout)
			return
		}
		writeError(w, http.StatusInternalServerError, j.err.Error())
		tr.Finish(reqID, len(reqDocs), "", http.StatusInternalServerError)
		return
	}

	writeStart := time.Now()
	resp := ClassifyResponse{
		ModelHash: j.snap.Info.SHA256,
		Results:   make([]DocResult, len(j.results)),
	}
	for i, preds := range j.results {
		res := DocResult{ID: reqDocs[i].ID, Categories: []string{}}
		for _, p := range preds {
			if p.InClass {
				res.Categories = append(res.Categories, p.Category)
			}
		}
		if req.Scores {
			res.Predictions = make([]PredictionJSON, len(preds))
			for k, p := range preds {
				res.Predictions[k] = PredictionJSON{Category: p.Category, Score: p.Score, InClass: p.InClass}
			}
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
	tr.Observe(telemetry.StageWrite, time.Since(writeStart))
	tr.Finish(reqID, len(reqDocs), j.snap.Info.SHA256, http.StatusOK)
}

// HealthResponse is the GET /v1/healthz reply.
type HealthResponse struct {
	Status    string `json:"status"`
	ModelHash string `json:"model_hash"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:    "ok",
		ModelHash: s.handle.Current().Info.SHA256,
	})
}

// ModelzResponse is the GET /v1/modelz reply: the serving model's
// identity plus a point-in-time telemetry snapshot.
type ModelzResponse struct {
	ModelHash     string         `json:"model_hash"`
	SnapshotPath  string         `json:"snapshot_path"`
	SnapshotBytes int64          `json:"snapshot_bytes"`
	LoadedAt      time.Time      `json:"loaded_at"`
	FeatureMethod string         `json:"feature_method"`
	Categories    []string       `json:"categories"`
	Metrics       map[string]any `json:"metrics,omitempty"`
}

func (s *Server) handleModelz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	snap := s.handle.Current()
	resp := ModelzResponse{
		ModelHash:     snap.Info.SHA256,
		SnapshotPath:  snap.Info.Path,
		SnapshotBytes: snap.Info.Bytes,
		LoadedAt:      snap.LoadedAt,
		FeatureMethod: string(snap.Model.FeatureMethod()),
		Categories:    snap.Model.Categories(),
	}
	if s.cfg.Metrics != nil {
		ms := s.cfg.Metrics.Snapshot()
		resp.Metrics = map[string]any{
			"counters":   ms.Counters,
			"gauges":     ms.Gauges,
			"histograms": ms.Histograms,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ReloadResponse is the POST /v1/reload reply.
type ReloadResponse struct {
	ModelHash    string `json:"model_hash"`
	PreviousHash string `json:"previous_hash"`
	Changed      bool   `json:"changed"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	prev := s.handle.Current()
	snap, err := s.handle.Reload()
	if err != nil {
		s.cfg.Log.Error("reload failed", "path", s.cfg.ModelPath, "err", err)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.cfg.Log.Info("model reloaded", "sha256", snap.Info.SHA256, "bytes", snap.Info.Bytes)
	writeJSON(w, http.StatusOK, ReloadResponse{
		ModelHash:    snap.Info.SHA256,
		PreviousHash: prev.Info.SHA256,
		Changed:      snap.Info.SHA256 != prev.Info.SHA256,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	// The response went over the wire (or the client is gone) — nothing
	// actionable remains, so the encode error is deliberately dropped.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// retryAfterSeconds renders the back-off hint, rounding up so a
// sub-second hint never becomes "Retry-After: 0".
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
