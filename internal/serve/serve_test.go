package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/lgp"
	"temporaldoc/internal/reuters"
	"temporaldoc/internal/telemetry"
	"temporaldoc/internal/textproc"
)

// --- shared fixture: one tiny corpus, two distinct trained snapshots ---

type fixture struct {
	corpus *corpus.Corpus
	// modelA/B are two models trained with different seeds, so their
	// predictions (and snapshot hashes) differ — the raw material of
	// every reload test.
	modelA, modelB *core.Model
	pathA, pathB   string
	hashA, hashB   string
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func testConfig(seed int64) core.Config {
	gp := lgp.DefaultConfig()
	gp.PopulationSize = 20
	gp.Tournaments = 300
	gp.MaxPages = 4
	gp.MaxPageSize = 4
	gp.DSS = &lgp.DSSConfig{SubsetSize: 20, Interval: 25}
	return core.Config{
		FeatureMethod: featsel.DF,
		FeatureConfig: featsel.Config{GlobalN: 60, PerCategoryN: 25},
		Encoder: hsom.Config{
			CharWidth: 5, CharHeight: 5,
			WordWidth: 4, WordHeight: 4,
			CharEpochs: 2, WordEpochs: 3,
			BMUFanout: 3,
			Seed:      seed + 1,
		},
		GP:       gp,
		Restarts: 1,
		Seed:     seed,
	}
}

func buildFixture() (*fixture, error) {
	gen := reuters.DefaultGenConfig()
	gen.Scale = 0.008
	gen.Seed = 11
	c, err := reuters.GenerateCorpus(gen)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "serve-fixture")
	if err != nil {
		return nil, err
	}
	f := &fixture{corpus: c}
	train := func(seed int64, path string) (*core.Model, string, error) {
		m, err := core.Train(testConfig(seed), c)
		if err != nil {
			return nil, "", err
		}
		out, err := os.Create(path)
		if err != nil {
			return nil, "", err
		}
		if err := m.Save(out); err != nil {
			out.Close()
			return nil, "", err
		}
		if err := out.Close(); err != nil {
			return nil, "", err
		}
		// Reload from disk so the in-memory reference model is exactly
		// the persisted one (training caches differ from loaded state).
		lm, info, err := core.LoadFile(path)
		if err != nil {
			return nil, "", err
		}
		return lm, info.SHA256, nil
	}
	f.pathA = filepath.Join(dir, "a.json")
	f.pathB = filepath.Join(dir, "b.json")
	if f.modelA, f.hashA, err = train(5, f.pathA); err != nil {
		return nil, err
	}
	if f.modelB, f.hashB, err = train(97, f.pathB); err != nil {
		return nil, err
	}
	if f.hashA == f.hashB {
		return nil, fmt.Errorf("fixture models have identical snapshots")
	}
	return f, nil
}

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() { fix, fixErr = buildFixture() })
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

// docText renders a corpus document back to raw text for the API.
func docText(d *corpus.Document) string { return strings.Join(d.Words, " ") }

// newTestServer builds a Server over the given snapshot path with
// test-friendly limits; callers may tweak cfg via mod.
func newTestServer(t *testing.T, path string, mod func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		ModelPath:      path,
		Workers:        2,
		QueueDepth:     8,
		MaxBatch:       16,
		MaxBodyBytes:   1 << 20,
		RequestTimeout: 30 * time.Second,
		Metrics:        telemetry.NewRegistry(),
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func decodeClassify(t *testing.T, b []byte) ClassifyResponse {
	t.Helper()
	var cr ClassifyResponse
	if err := json.Unmarshal(b, &cr); err != nil {
		t.Fatalf("response not valid ClassifyResponse JSON: %v\n%s", err, b)
	}
	return cr
}

// offlineCategories returns the in-class categories the model assigns
// offline — the ground truth every server response is compared with.
func offlineCategories(t *testing.T, m *core.Model, d *corpus.Document) []string {
	t.Helper()
	preds, err := m.ClassifyDoc(d, nil)
	if err != nil {
		t.Fatalf("ClassifyDoc: %v", err)
	}
	out := []string{}
	for _, p := range preds {
		if p.InClass {
			out = append(out, p.Category)
		}
	}
	return out
}

func TestServeSingleClassify(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	doc := &f.corpus.Test[0]
	resp, b := postJSON(t, hs.URL+"/v1/classify",
		fmt.Sprintf(`{"id":%q,"text":%q,"scores":true}`, doc.ID, docText(doc)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	cr := decodeClassify(t, b)
	if cr.ModelHash != f.hashA {
		t.Errorf("model_hash %q, want %q", cr.ModelHash, f.hashA)
	}
	if len(cr.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(cr.Results))
	}
	res := cr.Results[0]
	if res.ID != doc.ID {
		t.Errorf("result ID %q, want %q", res.ID, doc.ID)
	}
	if len(res.Predictions) != len(f.modelA.Categories()) {
		t.Errorf("got %d predictions, want one per category (%d)",
			len(res.Predictions), len(f.modelA.Categories()))
	}
	want := offlineCategories(t, f.modelA, doc)
	if fmt.Sprint(res.Categories) != fmt.Sprint(want) {
		t.Errorf("categories %v, want offline %v", res.Categories, want)
	}
}

func TestServeBatchClassify(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	n := 5
	var docs []string
	for i := 0; i < n; i++ {
		d := &f.corpus.Test[i%len(f.corpus.Test)]
		docs = append(docs, fmt.Sprintf(`{"id":%q,"text":%q}`, d.ID, docText(d)))
	}
	resp, b := postJSON(t, hs.URL+"/v1/classify",
		`{"documents":[`+strings.Join(docs, ",")+`]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	cr := decodeClassify(t, b)
	if len(cr.Results) != n {
		t.Fatalf("got %d results, want %d", len(cr.Results), n)
	}
	for i, res := range cr.Results {
		d := &f.corpus.Test[i%len(f.corpus.Test)]
		want := offlineCategories(t, f.modelA, d)
		if fmt.Sprint(res.Categories) != fmt.Sprint(want) {
			t.Errorf("doc %d: categories %v, want %v", i, res.Categories, want)
		}
	}
}

func TestServeRejectsMalformedRequests(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, func(c *Config) { c.MaxBatch = 2 })
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	cases := []struct {
		name, body string
	}{
		{"not JSON", `{`},
		{"wrong type", `[1,2,3]`},
		{"trailing garbage", `{"text":"x"} {"text":"y"}`},
		{"neither form", `{"scores":true}`},
		{"both forms", `{"text":"x","documents":[{"text":"y"}]}`},
		{"empty batch", `{"documents":[]}`},
		{"batch too large", `{"documents":[{"text":"a"},{"text":"b"},{"text":"c"}]}`},
		{"unknown field", `{"text":"x","bogus":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, b := postJSON(t, hs.URL+"/v1/classify", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, b)
			}
			var er errorResponse
			if err := json.Unmarshal(b, &er); err != nil || er.Error == "" {
				t.Errorf("400 body is not an error JSON: %s", b)
			}
		})
	}

	t.Run("GET rejected", func(t *testing.T) {
		resp, err := http.Get(hs.URL + "/v1/classify")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status %d, want 405", resp.StatusCode)
		}
	})
}

func TestServeOversizedBody413(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, func(c *Config) { c.MaxBodyBytes = 256 })
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	big := fmt.Sprintf(`{"text":%q}`, strings.Repeat("word ", 200))
	resp, b := postJSON(t, hs.URL+"/v1/classify", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, b)
	}
}

func TestServeTimeout504(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	d := &f.corpus.Test[0]
	resp, b := postJSON(t, hs.URL+"/v1/classify", fmt.Sprintf(`{"text":%q}`, docText(d)))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, b)
	}
}

func TestServeQueueFull503(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, func(c *Config) {
		c.RequestTimeout = 100 * time.Millisecond
		c.QueueDepth = 1
	})
	// Replace the pool with a worker-less one: submissions stay queued
	// forever, so the queue fills deterministically.
	s.pool.close()
	s.pool = newPool(0, 1, s.cfg.Metrics, s.stages, s.stats)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	d := fmt.Sprintf(`{"text":%q}`, docText(&f.corpus.Test[0]))
	// First request occupies the only queue slot until its deadline —
	// and stays in the queue after the 504, since no worker drains it.
	resp, b := postJSON(t, hs.URL+"/v1/classify", d)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("first request: status %d, want 504: %s", resp.StatusCode, b)
	}
	resp, b = postJSON(t, hs.URL+"/v1/classify", d)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request: status %d, want 503: %s", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("503 Retry-After = %q, want a positive seconds hint", ra)
	}
	reg := s.cfg.Metrics
	if got := reg.Counter("serve.queue.rejected").Value(); got < 1 {
		t.Errorf("serve.queue.rejected = %d, want >= 1", got)
	}
}

func TestServeHealthzAndModelz(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.ModelHash != f.hashA {
		t.Errorf("healthz = %+v, want ok/%s", h, f.hashA)
	}

	resp, err = http.Get(hs.URL + "/v1/modelz")
	if err != nil {
		t.Fatal(err)
	}
	var m ModelzResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.ModelHash != f.hashA {
		t.Errorf("modelz hash %q, want %q", m.ModelHash, f.hashA)
	}
	if m.FeatureMethod != "df" {
		t.Errorf("modelz feature_method %q, want df", m.FeatureMethod)
	}
	if len(m.Categories) != len(f.modelA.Categories()) {
		t.Errorf("modelz categories %v", m.Categories)
	}
	if m.Metrics == nil {
		t.Error("modelz metrics snapshot missing despite a live registry")
	}
	if m.LoadedAt.IsZero() {
		t.Error("modelz loaded_at is zero")
	}
}

func TestServeHotReloadSwapsPredictions(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	live := filepath.Join(dir, "live.json")
	copyFile(t, f.pathA, live)
	s := newTestServer(t, live, nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	d := &f.corpus.Test[0]
	body := fmt.Sprintf(`{"text":%q,"scores":true}`, docText(d))
	_, b := postJSON(t, hs.URL+"/v1/classify", body)
	if cr := decodeClassify(t, b); cr.ModelHash != f.hashA {
		t.Fatalf("pre-reload hash %q, want %q", cr.ModelHash, f.hashA)
	}

	copyFile(t, f.pathB, live)
	resp, b := postJSON(t, hs.URL+"/v1/reload", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, b)
	}
	var rr ReloadResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ModelHash != f.hashB || rr.PreviousHash != f.hashA || !rr.Changed {
		t.Errorf("reload = %+v, want %s -> %s changed", rr, f.hashA, f.hashB)
	}

	_, b = postJSON(t, hs.URL+"/v1/classify", body)
	cr := decodeClassify(t, b)
	if cr.ModelHash != f.hashB {
		t.Fatalf("post-reload hash %q, want %q", cr.ModelHash, f.hashB)
	}
	want := offlineCategories(t, f.modelB, d)
	if fmt.Sprint(cr.Results[0].Categories) != fmt.Sprint(want) {
		t.Errorf("post-reload categories %v, want model B's %v", cr.Results[0].Categories, want)
	}
}

func TestServeReloadFailureKeepsServing(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	live := filepath.Join(dir, "live.json")
	copyFile(t, f.pathA, live)
	s := newTestServer(t, live, nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	if err := os.WriteFile(live, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, b := postJSON(t, hs.URL+"/v1/reload", "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload of corrupt snapshot: status %d, want 500: %s", resp.StatusCode, b)
	}
	// The old model must keep serving.
	d := &f.corpus.Test[0]
	resp, b = postJSON(t, hs.URL+"/v1/classify", fmt.Sprintf(`{"text":%q}`, docText(d)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify after failed reload: status %d: %s", resp.StatusCode, b)
	}
	if cr := decodeClassify(t, b); cr.ModelHash != f.hashA {
		t.Errorf("hash after failed reload %q, want the original %q", cr.ModelHash, f.hashA)
	}
}

// TestServeMethodMismatch mirrors the cmd/tdc -method fix at the
// serving layer: a server required to serve method X refuses to load a
// snapshot trained under Y.
func TestServeMethodMismatch(t *testing.T) {
	f := getFixture(t)
	if _, err := New(Config{ModelPath: f.pathA, Method: featsel.MI}); err == nil {
		t.Fatal("server loaded a df snapshot under a required mi method")
	} else if !strings.Contains(err.Error(), "feature method") {
		t.Errorf("error %q does not explain the method mismatch", err)
	}
}

// TestServeKernelConfig checks kernel selection is validated at
// construction and applied to the loaded model — and survives a reload.
func TestServeKernelConfig(t *testing.T) {
	f := getFixture(t)
	if _, err := New(Config{ModelPath: f.pathA, Kernel: "float16"}); err == nil {
		t.Fatal("server accepted an unknown kernel")
	}
	s := newTestServer(t, f.pathA, func(c *Config) { c.Kernel = "float32" })
	if got := s.Current().Model.Kernel(); got != "float32" {
		t.Fatalf("loaded model kernel = %q, want float32", got)
	}
	if _, err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := s.Current().Model.Kernel(); got != "float32" {
		t.Fatalf("kernel lost across reload: %q", got)
	}
}

// TestServeKernelParityWithLegacyOffline is the cross-kernel
// byte-identity wall: the server on the default table+sparse kernel
// must produce byte-identical predictions to offline classification on
// the legacy dense reference path.
func TestServeKernelParityWithLegacyOffline(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, func(c *Config) {
		c.MaxBatch = 100
		c.MaxBodyBytes = 8 << 20
	})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Offline reference: a fresh load of the same snapshot, forced onto
	// the legacy kernel (f.modelA is shared fixture state — leave it be).
	ref, _, err := core.LoadFile(f.pathA)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetKernel("legacy"); err != nil {
		t.Fatal(err)
	}

	const total, batch = 200, 100
	var serverOut, offlineOut bytes.Buffer
	for start := 0; start < total; start += batch {
		var entries []string
		for i := start; i < start+batch; i++ {
			d := &f.corpus.Test[i%len(f.corpus.Test)]
			entries = append(entries, fmt.Sprintf(`{"id":"doc-%d","text":%q}`, i, docText(d)))
		}
		resp, b := postJSON(t, hs.URL+"/v1/classify",
			`{"documents":[`+strings.Join(entries, ",")+`],"scores":true}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch at %d: status %d: %s", start, resp.StatusCode, b)
		}
		for i, res := range decodeClassify(t, b).Results {
			fmt.Fprintf(&serverOut, "doc-%d %v", start+i, res.Categories)
			for _, p := range res.Predictions {
				fmt.Fprintf(&serverOut, " %s=%v", p.Category, p.Score)
			}
			fmt.Fprintln(&serverOut)
		}
	}
	pre := textproc.NewPreprocessor(textproc.Options{})
	for i := 0; i < total; i++ {
		d := &f.corpus.Test[i%len(f.corpus.Test)]
		doc := corpus.Document{ID: fmt.Sprintf("doc-%d", i), Words: pre.Process(docText(d))}
		preds, err := ref.ClassifyDoc(&doc, nil)
		if err != nil {
			t.Fatal(err)
		}
		cats := []string{}
		for _, p := range preds {
			if p.InClass {
				cats = append(cats, p.Category)
			}
		}
		fmt.Fprintf(&offlineOut, "doc-%d %v", i, cats)
		for _, p := range preds {
			fmt.Fprintf(&offlineOut, " %s=%v", p.Category, p.Score)
		}
		fmt.Fprintln(&offlineOut)
	}
	if !bytes.Equal(serverOut.Bytes(), offlineOut.Bytes()) {
		t.Fatal("sparse-kernel server and legacy-kernel offline predictions differ")
	}
}

// TestServeParityWithOffline is the acceptance check: a 1000-document
// run through the HTTP server must produce byte-identical predictions
// to offline classification on the same snapshot.
func TestServeParityWithOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-document parity run skipped in -short")
	}
	f := getFixture(t)
	s := newTestServer(t, f.pathA, func(c *Config) {
		c.MaxBatch = 100
		c.MaxBodyBytes = 8 << 20
	})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	const total, batch = 1000, 100
	var serverOut, offlineOut bytes.Buffer
	for start := 0; start < total; start += batch {
		var entries []string
		for i := start; i < start+batch; i++ {
			d := &f.corpus.Test[i%len(f.corpus.Test)]
			entries = append(entries, fmt.Sprintf(`{"id":"doc-%d","text":%q}`, i, docText(d)))
		}
		resp, b := postJSON(t, hs.URL+"/v1/classify",
			`{"documents":[`+strings.Join(entries, ",")+`],"scores":true}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch at %d: status %d: %s", start, resp.StatusCode, b)
		}
		cr := decodeClassify(t, b)
		if cr.ModelHash != f.hashA {
			t.Fatalf("batch at %d scored by %q, want %q", start, cr.ModelHash, f.hashA)
		}
		for i, res := range cr.Results {
			fmt.Fprintf(&serverOut, "doc-%d %v", start+i, res.Categories)
			for _, p := range res.Predictions {
				fmt.Fprintf(&serverOut, " %s=%v", p.Category, p.Score)
			}
			fmt.Fprintln(&serverOut)
		}
	}
	pre := textproc.NewPreprocessor(textproc.Options{})
	for i := 0; i < total; i++ {
		d := &f.corpus.Test[i%len(f.corpus.Test)]
		// Offline goes through the same text round-trip the server
		// sees, so tokenisation is identical by construction.
		doc := corpus.Document{ID: fmt.Sprintf("doc-%d", i), Words: pre.Process(docText(d))}
		preds, err := f.modelA.ClassifyDoc(&doc, nil)
		if err != nil {
			t.Fatal(err)
		}
		cats := []string{}
		for _, p := range preds {
			if p.InClass {
				cats = append(cats, p.Category)
			}
		}
		fmt.Fprintf(&offlineOut, "doc-%d %v", i, cats)
		for _, p := range preds {
			fmt.Fprintf(&offlineOut, " %s=%v", p.Category, p.Score)
		}
		fmt.Fprintln(&offlineOut)
	}
	if !bytes.Equal(serverOut.Bytes(), offlineOut.Bytes()) {
		t.Fatal("server and offline predictions differ byte-for-byte")
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	// Write-then-rename keeps the swap atomic for reloaders racing us.
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		t.Fatal(err)
	}
}
