package serve

import (
	"context"
	"errors"
	"time"

	"sync"

	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
	"temporaldoc/internal/telemetry"
)

// ErrQueueFull is returned by submit when the bounded queue cannot
// accept another job; the HTTP layer maps it to 503 + Retry-After.
var ErrQueueFull = errors.New("serve: classification queue full")

// job is one enqueued classification unit. The handler pins snap
// before submitting (so cold registry loads happen on the request
// goroutine, never on a scoring worker); the worker fills results, err
// and the stage durations, then closes done. The handler reads the
// worker-owned fields only after done is closed (or abandons the job
// entirely on timeout), so the two goroutines never touch the same
// field concurrently.
type job struct {
	ctx  context.Context
	docs []corpus.Document
	// snap is the model snapshot this job is pinned to, set by the
	// handler before submit and never changed after.
	snap *ModelSnapshot
	// enqueued is stamped by submit; the worker turns it into the
	// queue-wait stage duration on dequeue.
	enqueued time.Time

	results [][]core.Prediction
	err     error
	done    chan struct{}
	// queueWait and classifyDur are the worker-measured stage durations,
	// copied into the handler's request trace after done closes.
	queueWait   time.Duration
	classifyDur time.Duration
}

// pool is the bounded worker pool classification runs on. A fixed
// worker count keeps scoring concurrency at the configured level no
// matter how many HTTP connections arrive; the buffered queue absorbs
// bursts and rejects (rather than buffers) overload beyond it.
type pool struct {
	queue  chan *job
	wg     sync.WaitGroup
	stages *telemetry.StageRecorder
	stats  *modelStats

	depth    *telemetry.Gauge
	rejected *telemetry.Counter
	jobs     *telemetry.Counter
	docs     *telemetry.Counter
}

func newPool(workers, depth int, reg *telemetry.Registry, stages *telemetry.StageRecorder, stats *modelStats) *pool {
	p := &pool{
		queue:    make(chan *job, depth),
		stages:   stages,
		stats:    stats,
		depth:    reg.Gauge("serve.queue.depth"),
		rejected: reg.Counter("serve.queue.rejected"),
		jobs:     reg.Counter("serve.jobs"),
		docs:     reg.Counter("serve.docs"),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// submit enqueues a job without blocking; ErrQueueFull means the
// caller should shed the request.
func (p *pool) submit(j *job) error {
	//lint:ignore determinism queue-wait telemetry: the stamp only ever feeds time.Since in the worker, never model state
	j.enqueued = time.Now()
	select {
	case p.queue <- j:
		p.depth.Set(float64(len(p.queue)))
		return nil
	default:
		p.rejected.Inc()
		return ErrQueueFull
	}
}

// close stops accepting jobs and waits for queued ones to finish.
func (p *pool) close() {
	close(p.queue)
	p.wg.Wait()
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.depth.Set(float64(len(p.queue)))
		// Queue wait is measured here, not in the handler: the handler
		// may have stopped listening (504) while the job still holds a
		// queue slot, and the wait ends only when a worker picks it up.
		j.queueWait = time.Since(j.enqueued)
		p.stages.Observe(telemetry.StageQueue, j.queueWait)
		start := time.Now()
		p.run(j)
		j.classifyDur = time.Since(start)
		p.stages.Observe(telemetry.StageClassify, j.classifyDur)
		close(j.done)
	}
}

// run scores every document of the job with its one pinned model
// snapshot. The handler resolved snap before submitting: a concurrent
// reload or cache eviction affects later jobs but can never mix models
// inside this one.
func (p *pool) run(j *job) {
	if err := j.ctx.Err(); err != nil {
		j.err = err // expired while queued; skip the scoring work
		return
	}
	snap := j.snap
	ncats := len(snap.Model.Categories())
	j.results = make([][]core.Prediction, 0, len(j.docs))
	buf := make([]core.Prediction, 0, ncats*len(j.docs))
	for i := range j.docs {
		if err := j.ctx.Err(); err != nil {
			j.err = err
			return
		}
		preds, err := snap.Model.ClassifyDoc(&j.docs[i], buf[len(buf):len(buf):len(buf)+ncats])
		if err != nil {
			j.err = err
			return
		}
		buf = buf[:len(buf)+len(preds)]
		j.results = append(j.results, preds)
	}
	p.jobs.Inc()
	p.docs.Add(int64(len(j.docs)))
	p.stats.add(snap.Name, len(j.docs))
}
