package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"temporaldoc/internal/telemetry"
)

func getStatz(t *testing.T, base string) StatzResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statz status %d", resp.StatusCode)
	}
	var sz StatzResponse
	if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
		t.Fatal(err)
	}
	return sz
}

func TestStatzCountsAndStages(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	const n = 6
	body := fmt.Sprintf(`{"text":%q}`, docText(&f.corpus.Test[0]))
	for i := 0; i < n; i++ {
		resp, b := postJSON(t, hs.URL+"/v1/classify", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %d: status %d: %s", i, resp.StatusCode, b)
		}
	}
	// One malformed request for the 4xx bucket.
	if resp, _ := postJSON(t, hs.URL+"/v1/classify", `{`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed classify: status %d", resp.StatusCode)
	}

	sz := getStatz(t, hs.URL)
	if sz.ModelHash != f.hashA {
		t.Errorf("statz model_hash = %q, want %q", sz.ModelHash, f.hashA)
	}
	if sz.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", sz.UptimeSeconds)
	}
	if sz.Requests.Total != n+1 {
		t.Errorf("requests.total = %d, want %d", sz.Requests.Total, n+1)
	}
	if sz.Requests.OK != n {
		t.Errorf("requests.ok = %d, want %d", sz.Requests.OK, n)
	}
	if sz.Requests.ClientError != 1 {
		t.Errorf("requests.client_error = %d, want 1", sz.Requests.ClientError)
	}
	if sz.Requests.Shed != 0 || sz.Requests.Timeout != 0 || sz.Requests.Panics != 0 {
		t.Errorf("unexpected error accounting: %+v", sz.Requests)
	}
	if sz.DocsClassified != n {
		t.Errorf("docs_classified = %d, want %d", sz.DocsClassified, n)
	}
	if sz.RequestThroughput <= 0 || sz.DocThroughput <= 0 {
		t.Errorf("throughput not positive: %v rps / %v dps", sz.RequestThroughput, sz.DocThroughput)
	}
	if sz.Latency.Count != int64(n+1) {
		t.Errorf("latency.count = %d, want %d", sz.Latency.Count, n+1)
	}
	// Stage histograms: decode counts every parsed request (including
	// the failed parse), queue/classify only successfully scored jobs.
	for _, stage := range []string{"decode", "queue", "classify", "write"} {
		st, ok := sz.Stages[stage]
		if !ok {
			t.Fatalf("stage %q missing from statz: %+v", stage, sz.Stages)
		}
		if stage == "decode" {
			continue // counted on the failure path too, asserted below
		}
		if st.Count != n {
			t.Errorf("stage %s count = %d, want %d", stage, st.Count, n)
		}
		if st.P50US > st.P95US || st.P95US > st.P99US {
			t.Errorf("stage %s percentiles not monotone: %+v", stage, st)
		}
	}
	if got := sz.Stages["decode"].Count; got != n {
		t.Errorf("decode count = %d, want %d (failed parses do not reach the decode mark)", got, n)
	}
	// End-to-end latency contains the classify stage, so its tail must
	// dominate the classify median (p50-vs-p50 could flip by one bucket
	// because the fast 400 request lands in latency but not classify).
	if sz.Latency.P99US < sz.Stages["classify"].P50US {
		t.Errorf("end-to-end p99 %vus < classify stage p50 %vus", sz.Latency.P99US, sz.Stages["classify"].P50US)
	}

	if resp, _ := postJSON(t, hs.URL+"/v1/statz", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/statz status %d, want 405", resp.StatusCode)
	}
}

func TestStatzNilRegistry(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, func(c *Config) { c.Metrics = nil })
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	sz := getStatz(t, hs.URL)
	if sz.ModelHash != f.hashA || sz.UptimeSeconds <= 0 {
		t.Errorf("nil-registry statz identity wrong: %+v", sz)
	}
	if sz.Requests.Total != 0 || sz.Latency.Count != 0 {
		t.Errorf("nil-registry statz should be all-zero counts: %+v", sz)
	}
}

func TestRequestIDEchoAndGeneration(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, nil)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	body := fmt.Sprintf(`{"text":%q}`, docText(&f.corpus.Test[0]))
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/classify", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "client-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "client-chose-this" {
		t.Errorf("client id not echoed: %q", got)
	}

	// Without a client id the server generates distinct ones.
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, err := http.Post(hs.URL+"/v1/healthz", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get(RequestIDHeader)
		if id == "" || seen[id] {
			t.Fatalf("generated id %q empty or repeated", id)
		}
		seen[id] = true
	}

	// Oversized client ids are truncated, not rejected.
	req, err = http.NewRequest(http.MethodPost, hs.URL+"/v1/classify", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 4096))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); len(got) != maxRequestIDLen {
		t.Errorf("oversized id echoed at %d chars, want truncation to %d", len(got), maxRequestIDLen)
	}
}

// TestPanicRecoveryMiddleware drives a deliberately panicking handler
// through the server's middleware chain: the client gets a JSON 500
// with its request id echoed, serve.panics and the 5xx status class
// move, and the server keeps serving afterwards.
func TestPanicRecoveryMiddleware(t *testing.T) {
	f := getFixture(t)
	s := newTestServer(t, f.pathA, nil)

	boom := s.cfg.Metrics.InstrumentHandler("boom", s.recoverPanics(
		http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
			panic("kaboom")
		})))
	mux := http.NewServeMux()
	mux.Handle("/boom", boom)
	mux.Handle("/", s.Handler())
	hs := httptest.NewServer(withRequestID(mux))
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/boom")
	if err != nil {
		t.Fatalf("panicking handler killed the connection: %v", err)
	}
	b, _ := readAll(resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, b)
	}
	var er errorResponse
	if err := json.Unmarshal(b, &er); err != nil || er.Error == "" {
		t.Errorf("500 body not an error JSON: %s", b)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("panic response lost the request id")
	}
	if got := s.cfg.Metrics.Counter("serve.panics").Value(); got != 1 {
		t.Errorf("serve.panics = %d, want 1", got)
	}
	if got := s.cfg.Metrics.Counter("http.boom.status.5xx").Value(); got != 1 {
		t.Errorf("http.boom.status.5xx = %d, want 1 (recovery must run inside instrumentation)", got)
	}

	// The server is still healthy.
	body := fmt.Sprintf(`{"text":%q}`, docText(&f.corpus.Test[0]))
	if resp, b := postJSON(t, hs.URL+"/v1/classify", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify after panic: status %d: %s", resp.StatusCode, b)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestRequestTraceSampling wires a Trace sink at sample rate 1 and
// checks every classify request emits a well-formed JSONL record whose
// id matches the response header and whose stages are populated.
func TestRequestTraceSampling(t *testing.T) {
	f := getFixture(t)
	var mu sync.Mutex
	var buf bytes.Buffer
	s := newTestServer(t, f.pathA, func(c *Config) {
		c.Trace = telemetry.NewEventWriter(&syncWriter{w: &buf, mu: &mu})
		c.TraceSampleEvery = 1
	})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	body := fmt.Sprintf(`{"text":%q}`, docText(&f.corpus.Test[0]))
	var ids []string
	for i := 0; i < 3; i++ {
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/classify", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(RequestIDHeader, fmt.Sprintf("trace-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify status %d", resp.StatusCode)
		}
		ids = append(ids, resp.Header.Get(RequestIDHeader))
	}

	mu.Lock()
	lines := buf.String()
	mu.Unlock()
	var recs []telemetry.RequestTraceRecord
	sc := bufio.NewScanner(strings.NewReader(lines))
	for sc.Scan() {
		var rec telemetry.RequestTraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != len(ids) {
		t.Fatalf("got %d trace records for %d requests at rate 1", len(recs), len(ids))
	}
	for i, rec := range recs {
		if rec.RequestID != ids[i] {
			t.Errorf("record %d id %q, want %q", i, rec.RequestID, ids[i])
		}
		if rec.Status != http.StatusOK || rec.Batch != 1 || rec.ModelHash != f.hashA {
			t.Errorf("record %d fields: %+v", i, rec)
		}
		if rec.ClassifyUS <= 0 || rec.TotalUS < rec.ClassifyUS {
			t.Errorf("record %d durations implausible: %+v", i, rec)
		}
	}
}

type syncWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
