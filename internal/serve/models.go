package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"temporaldoc/internal/registry"
)

// SingleModelName and SingleModelVersion are the names the single-model
// path (Config.ModelPath) serves under, so /v1/models always renders a
// registry-shaped view and a classify request may name its model in
// either mode: a single-model server is a one-entry registry.
const (
	SingleModelName    = "default"
	SingleModelVersion = "current"
)

// resolveSnapshot pins the model snapshot a request is served by —
// exactly once per request, whichever mode the server runs in. In
// single-model mode the only valid names are the synthetic
// default/current pair; in registry mode the registry resolves names
// (and may cold-load, under single-flight, bounded by ctx). The int is
// the HTTP status to answer with when err is non-nil.
func (s *Server) resolveSnapshot(ctx context.Context, model, version string) (*ModelSnapshot, int, error) {
	if s.registry == nil {
		if model != "" && model != SingleModelName {
			return nil, http.StatusNotFound,
				fmt.Errorf("unknown model %q (this server serves the single model %q)", model, SingleModelName)
		}
		if version != "" && version != SingleModelVersion {
			return nil, http.StatusNotFound,
				fmt.Errorf("unknown version %q (this server serves the single version %q)", version, SingleModelVersion)
		}
		return s.handle.Current(), 0, nil
	}
	rs, err := s.registry.Acquire(ctx, model, version)
	if err == nil {
		return &ModelSnapshot{
			Model:    rs.Model,
			Info:     rs.Info,
			Name:     rs.Name,
			Version:  rs.Version,
			LoadedAt: rs.LoadedAt,
		}, 0, nil
	}
	switch {
	case errors.Is(err, registry.ErrUnknownModel), errors.Is(err, registry.ErrUnknownVersion):
		return nil, http.StatusNotFound, err
	case errors.Is(err, registry.ErrModelRequired):
		return nil, http.StatusBadRequest, err
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The request deadline expired while waiting on a cold load.
		return nil, http.StatusGatewayTimeout, err
	}
	return nil, http.StatusInternalServerError, err
}

// ModelsResponse is the GET /v1/models reply: the registry catalog with
// resident/cold status per version. A single-model server renders
// itself as a one-entry registry so clients never need two shapes.
type ModelsResponse struct {
	// Mode is "single" (Config.ModelPath) or "registry"
	// (Config.ModelsDir).
	Mode string `json:"mode"`
	// DefaultModel is the model an unnamed classify request resolves to;
	// omitted when several models are published and none is configured
	// as the default.
	DefaultModel string                 `json:"default_model,omitempty"`
	Models       []registry.ModelStatus `json:"models"`
}

// handleModels is GET /v1/models.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.modelsResponse())
}

func (s *Server) modelsResponse() ModelsResponse {
	if s.registry == nil {
		snap := s.handle.Current()
		return ModelsResponse{
			Mode:         "single",
			DefaultModel: SingleModelName,
			Models: []registry.ModelStatus{{
				Name: SingleModelName,
				Versions: []registry.VersionStatus{{
					Version:       SingleModelVersion,
					SHA256:        snap.Info.SHA256,
					Bytes:         snap.Info.Bytes,
					FeatureMethod: string(snap.Model.FeatureMethod()),
					Kernel:        snap.Model.Kernel(),
					CreatedAt:     snap.LoadedAt,
					Latest:        true,
					Resident:      true,
				}},
			}},
		}
	}
	resp := ModelsResponse{Mode: "registry", Models: s.registry.Models()}
	if def, ok := s.registry.Default(); ok {
		resp.DefaultModel = def
	}
	return resp
}

// ModelStatz is one model's request accounting in /v1/statz.
type ModelStatz struct {
	Requests int64 `json:"requests"`
	Docs     int64 `json:"docs"`
}

// modelStats tracks per-model request/document counts. The telemetry
// registry deliberately stays out of this: metric names there must be
// compile-time constants (telemetrysafe), and per-tenant names are
// exactly the dynamic-cardinality case that rule exists for. A small
// atomic map scoped to the server keeps the counts and /v1/statz
// renders them.
type modelStats struct {
	mu sync.Mutex
	m  map[string]*modelCounters
}

type modelCounters struct {
	requests atomic.Int64
	docs     atomic.Int64
}

func newModelStats() *modelStats { return &modelStats{m: map[string]*modelCounters{}} }

// add records one classified job. The mutex only guards the map shape;
// counts are atomics so concurrent workers of the same model never
// serialise on it after first touch.
func (s *modelStats) add(model string, docs int) {
	s.mu.Lock()
	c := s.m[model]
	if c == nil {
		c = &modelCounters{}
		s.m[model] = c
	}
	s.mu.Unlock()
	c.requests.Add(1)
	c.docs.Add(int64(docs))
}

// snapshot renders the counts, sorted iteration left to the consumer
// (JSON maps render sorted by encoding/json anyway).
func (s *modelStats) snapshot() map[string]ModelStatz {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.m) == 0 {
		return nil
	}
	out := make(map[string]ModelStatz, len(s.m))
	names := make([]string, 0, len(s.m))
	for name := range s.m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := s.m[name]
		out[name] = ModelStatz{Requests: c.requests.Load(), Docs: c.docs.Load()}
	}
	return out
}
