package serve

import (
	"net/http"
	"time"

	"temporaldoc/internal/telemetry"
)

// StageStatz is one latency distribution rendered for /v1/statz:
// interpolated percentiles (telemetry.HistogramSnapshot.Quantile) in
// microseconds, plus count and mean. Percentiles are estimates within
// the histogram's bucket resolution (exponential 1µs..8.6s bounds,
// doubling), good to a factor of 2 worst-case and far better in
// practice — and identical math on both sides of the loadgen
// cross-check.
type StageStatz struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
}

// stageStatzFrom renders a seconds histogram as microsecond statz.
func stageStatzFrom(h telemetry.HistogramSnapshot) StageStatz {
	const usPerSec = 1e6
	qs := h.Quantiles(0.50, 0.90, 0.95, 0.99)
	return StageStatz{
		Count:  h.Count,
		MeanUS: h.Mean() * usPerSec,
		P50US:  qs[0] * usPerSec,
		P90US:  qs[1] * usPerSec,
		P95US:  qs[2] * usPerSec,
		P99US:  qs[3] * usPerSec,
	}
}

// StatzRequests is the request-accounting block of /v1/statz. Total and
// the status classes count classify requests only (the other routes are
// not load-bearing). Shed (queue-full 503) and Timeout (deadline 504)
// are also inside ServerError's 5xx total; they get their own counters
// and rates because they are the two backpressure signals a load test
// steers by.
type StatzRequests struct {
	Total       int64 `json:"total"`
	OK          int64 `json:"ok"`
	ClientError int64 `json:"client_error"`
	ServerError int64 `json:"server_error"`
	Shed        int64 `json:"shed"`
	Timeout     int64 `json:"timeout"`
	Panics      int64 `json:"panics"`
	// ShedRate and TimeoutRate are fractions of Total (0 when Total is).
	ShedRate    float64 `json:"shed_rate"`
	TimeoutRate float64 `json:"timeout_rate"`
}

// StatzResponse is the GET /v1/statz reply: the serving performance
// story in one document — per-stage latency percentiles, end-to-end
// latency, throughput since start, live queue/inflight state and error
// rates. `tdc loadgen` reads it before and after a run and cross-checks
// its client-side measurements against the deltas.
type StatzResponse struct {
	ModelHash     string  `json:"model_hash"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Requests StatzRequests `json:"requests"`
	// DocsClassified counts documents (a batch of 64 is one request but
	// 64 docs); DocThroughput is docs per second of uptime.
	DocsClassified    int64   `json:"docs_classified"`
	RequestThroughput float64 `json:"request_throughput_rps"`
	DocThroughput     float64 `json:"doc_throughput_dps"`

	Inflight   float64 `json:"inflight"`
	QueueDepth float64 `json:"queue_depth"`

	// Latency is end-to-end handler time (http.classify.seconds);
	// Stages breaks it into decode / queue / classify / write from the
	// stage recorder's histograms.
	Latency StageStatz            `json:"latency"`
	Stages  map[string]StageStatz `json:"stages"`

	// Models counts classified requests/documents per served model name
	// (single-model servers count under SingleModelName). Omitted until
	// the first classified job.
	Models map[string]ModelStatz `json:"models,omitempty"`
}

// handleStatz is GET /v1/statz.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.statz())
}

// statz assembles the response from one registry snapshot, so every
// number in it is from (almost) the same instant. With a nil registry
// everything but identity and uptime stays zero.
func (s *Server) statz() StatzResponse {
	snap := s.cfg.Metrics.Snapshot()
	uptime := time.Since(s.started).Seconds()
	// In registry mode the identity hash is the default model's latest
	// published version (empty when no default resolves); per-model
	// traffic is in Models either way.
	var modelHash string
	if s.registry != nil {
		if _, _, sha, ok := s.registry.DefaultVersionInfo(); ok {
			modelHash = sha
		}
	} else {
		modelHash = s.handle.Current().Info.SHA256
	}
	resp := StatzResponse{
		ModelHash:     modelHash,
		UptimeSeconds: uptime,
		Requests: StatzRequests{
			Total:       snap.Counters["http.classify.requests"],
			OK:          snap.Counters["http.classify.status.2xx"],
			ClientError: snap.Counters["http.classify.status.4xx"],
			ServerError: snap.Counters["http.classify.status.5xx"],
			Shed:        snap.Counters["serve.queue.rejected"],
			Timeout:     snap.Counters["serve.timeouts"],
			Panics:      snap.Counters["serve.panics"],
		},
		DocsClassified: snap.Counters["serve.docs"],
		Inflight:       snap.Gauges["http.classify.inflight"],
		QueueDepth:     snap.Gauges["serve.queue.depth"],
		Latency:        stageStatzFrom(snap.Histograms["http.classify.seconds"]),
		Stages:         make(map[string]StageStatz, telemetry.NumStages),
	}
	if resp.Requests.Total > 0 {
		resp.Requests.ShedRate = float64(resp.Requests.Shed) / float64(resp.Requests.Total)
		resp.Requests.TimeoutRate = float64(resp.Requests.Timeout) / float64(resp.Requests.Total)
	}
	if uptime > 0 {
		resp.RequestThroughput = float64(resp.Requests.Total) / uptime
		resp.DocThroughput = float64(resp.DocsClassified) / uptime
	}
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		resp.Stages[st.String()] = stageStatzFrom(snap.Histograms["serve.stage."+st.String()+".seconds"])
	}
	resp.Models = s.stats.snapshot()
	return resp
}
