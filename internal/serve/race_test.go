package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"temporaldoc/internal/core"
	"temporaldoc/internal/corpus"
)

// TestReloadUnderLoad is the concurrency wall: N goroutines fire M
// classify requests each while a reloader goroutine keeps swapping the
// snapshot file between two models and hot-reloading. Every response
// must be internally consistent — its predictions byte-equal to what
// the model named by its model_hash produces offline. A single mixed
// response (hash from one model, scores from the other) fails the
// test; `go test -race ./internal/serve` additionally turns any
// unsynchronised handle access into a hard failure.
func TestReloadUnderLoad(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	live := filepath.Join(dir, "live.json")
	copyFile(t, f.pathA, live)
	s := newTestServer(t, live, func(c *Config) {
		c.Workers = 4
		c.QueueDepth = 64
	})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Precompute, per snapshot hash, the exact rendering every response
	// must match: category list plus raw scores for a fixed probe
	// document.
	probe := &f.corpus.Test[1]
	body := fmt.Sprintf(`{"text":%q,"scores":true}`, docText(probe))
	expected := map[string]string{
		f.hashA: renderPredictions(t, f.modelA, probe),
		f.hashB: renderPredictions(t, f.modelB, probe),
	}
	if expected[f.hashA] == expected[f.hashB] {
		t.Log("warning: both fixture models agree on the probe; only the hash check distinguishes them")
	}

	const (
		goroutines = 8
		requests   = 25
	)
	stop := make(chan struct{})
	var reloads atomic.Int64
	var reloaderWg sync.WaitGroup
	reloaderWg.Add(1)
	go func() { // reloader: alternate snapshots as fast as possible
		defer reloaderWg.Done()
		paths := []string{f.pathB, f.pathA}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			copyFile(t, paths[i%2], live)
			resp, err := http.Post(hs.URL+"/v1/reload", "application/json", nil)
			if err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				reloads.Add(1)
			}
		}
	}()

	errs := make(chan error, goroutines*requests)
	var reqWg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		reqWg.Add(1)
		go func() {
			defer reqWg.Done()
			for r := 0; r < requests; r++ {
				resp, err := http.Post(hs.URL+"/v1/classify", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var cr ClassifyResponse
				err = json.NewDecoder(resp.Body).Decode(&cr)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("decode: %w", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				want, ok := expected[cr.ModelHash]
				if !ok {
					errs <- fmt.Errorf("response carries unknown model hash %q", cr.ModelHash)
					return
				}
				if got := renderResponse(&cr); got != want {
					errs <- fmt.Errorf("mixed response under hash %s:\n got %s\nwant %s", cr.ModelHash, got, want)
					return
				}
			}
		}()
	}
	reqWg.Wait()
	close(stop)
	reloaderWg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if reloads.Load() == 0 {
		t.Error("reloader never completed a successful reload during the storm")
	}
}

// renderPredictions renders a model's offline predictions for doc in
// the same canonical form renderResponse produces for a server reply.
func renderPredictions(t *testing.T, m *core.Model, doc *corpus.Document) string {
	t.Helper()
	preds, err := m.ClassifyDoc(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	cats := []string{}
	for _, p := range preds {
		if p.InClass {
			cats = append(cats, p.Category)
		}
	}
	fmt.Fprintf(&sb, "%v", cats)
	for _, p := range preds {
		fmt.Fprintf(&sb, " %s=%v", p.Category, p.Score)
	}
	return sb.String()
}

func renderResponse(cr *ClassifyResponse) string {
	var sb strings.Builder
	res := cr.Results[0]
	fmt.Fprintf(&sb, "%v", res.Categories)
	for _, p := range res.Predictions {
		fmt.Fprintf(&sb, " %s=%v", p.Category, p.Score)
	}
	return sb.String()
}
