package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, c := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(loaded.Categories(), m.Categories()) {
		t.Fatalf("categories changed: %v vs %v", loaded.Categories(), m.Categories())
	}
	// Loaded model must classify identically.
	for i := range c.Test[:25] {
		want, err := m.Classify(&c.Test[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Classify(&c.Test[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("doc %d: loaded %v != original %v", i, got, want)
		}
	}
	// Scores must match exactly (same encoder, same programs).
	for _, cat := range m.Categories() {
		a, _ := m.Score(cat, &c.Test[0])
		b, _ := loaded.Score(cat, &c.Test[0])
		if a != b {
			t.Fatalf("category %s: score %v != %v", cat, a, b)
		}
		if loaded.CategoryModelFor(cat).Threshold != m.CategoryModelFor(cat).Threshold {
			t.Fatalf("category %s: threshold changed", cat)
		}
	}
	// Traces must match.
	ta, err := m.Trace("earn", &c.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	tb, err := loaded.Trace("earn", &c.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ta, tb) {
		t.Fatal("traces differ after round trip")
	}
}

func TestModelSaveLoadPreservesSelection(t *testing.T) {
	m, _ := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Selection() == nil {
		t.Fatal("selection lost")
	}
	if loaded.Selection().Method != m.Selection().Method {
		t.Error("selection method changed")
	}
	if !reflect.DeepEqual(loaded.Keep("earn"), m.Keep("earn")) {
		t.Error("keep-set changed")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{}`)); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestReadSnapshotHeader(t *testing.T) {
	m, _ := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadSnapshotHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshotHeader: %v", err)
	}
	if h.Version != snapshotVersion {
		t.Errorf("header version %d, want %d", h.Version, snapshotVersion)
	}
	if h.FeatureMethod != m.FeatureMethod() {
		t.Errorf("header method %q, want %q", h.FeatureMethod, m.FeatureMethod())
	}
	if !reflect.DeepEqual(h.Categories, m.Categories()) {
		t.Errorf("header categories %v, want %v", h.Categories, m.Categories())
	}
}

func TestReadSnapshotHeaderRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"empty":         `{}`,
		"wrong version": `{"version": 99, "feature_method": "df", "categories": ["earn"]}`,
		"bad method":    `{"version": 1, "feature_method": "nope", "categories": ["earn"]}`,
		"no categories": `{"version": 1, "feature_method": "df", "categories": []}`,
	}
	for name, body := range cases {
		if _, err := ReadSnapshotHeader(strings.NewReader(body)); err == nil {
			t.Errorf("%s: header accepted", name)
		}
	}
}

func TestLoadRejectsInconsistentSnapshot(t *testing.T) {
	m, _ := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Drop one model entry: categories and models disagree.
	text := buf.String()
	mangled := strings.Replace(text, `"category":"earn"`, `"category":"zzz"`, 1)
	if mangled == text {
		t.Skip("snapshot shape changed; update the mangling")
	}
	if _, err := Load(strings.NewReader(mangled)); err == nil {
		t.Error("inconsistent snapshot accepted")
	}
}
