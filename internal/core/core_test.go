package core

import (
	"strings"
	"testing"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/lgp"
	"temporaldoc/internal/reuters"
)

// fastConfig returns a heavily scaled-down configuration that still
// exercises every stage.
func fastConfig(method featsel.Method) Config {
	gp := lgp.DefaultConfig()
	gp.PopulationSize = 25
	gp.Tournaments = 500
	gp.MaxPages = 4
	gp.MaxPageSize = 4
	gp.DSS = &lgp.DSSConfig{SubsetSize: 20, Interval: 25}
	return Config{
		FeatureMethod: method,
		FeatureConfig: featsel.Config{GlobalN: 60, PerCategoryN: 25},
		Encoder: hsom.Config{
			CharWidth: 5, CharHeight: 5,
			WordWidth: 4, WordHeight: 4,
			CharEpochs: 2, WordEpochs: 4,
			BMUFanout: 3,
			Seed:      3,
		},
		GP:       gp,
		Restarts: 1,
		Seed:     5,
	}
}

func smallCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	cfg := reuters.DefaultGenConfig()
	cfg.Scale = 0.01
	cfg.Seed = 11
	c, err := reuters.GenerateCorpus(cfg)
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	return c
}

// trainedModel caches one trained model across tests in this package.
var cachedModel *Model
var cachedCorpus *corpus.Corpus

func trainedModel(t *testing.T) (*Model, *corpus.Corpus) {
	t.Helper()
	if cachedModel != nil {
		return cachedModel, cachedCorpus
	}
	c := smallCorpus(t)
	m, err := Train(fastConfig(featsel.DF), c)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	cachedModel, cachedCorpus = m, c
	return m, c
}

func TestTrainRejectsInvalidCorpus(t *testing.T) {
	if _, err := Train(fastConfig(featsel.DF), &corpus.Corpus{}); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestTrainBuildsAllCategories(t *testing.T) {
	m, c := trainedModel(t)
	if got := m.Categories(); len(got) != len(c.Categories) {
		t.Fatalf("Categories = %v", got)
	}
	for _, cat := range c.Categories {
		cm := m.CategoryModelFor(cat)
		if cm == nil {
			t.Fatalf("category %s missing", cat)
		}
		if cm.Program == nil || len(cm.Program.Code) == 0 {
			t.Errorf("category %s has empty program", cat)
		}
		if cm.Threshold < -1 || cm.Threshold > 1 {
			t.Errorf("category %s threshold %v out of [-1,1]", cat, cm.Threshold)
		}
	}
	if m.CategoryModelFor("bogus") != nil {
		t.Error("unknown category returned a model")
	}
}

func TestModelClassifiesBetterThanChance(t *testing.T) {
	m, c := trainedModel(t)
	set, err := m.Evaluate(c.Test)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// With a tiny GP budget we only demand clear better-than-random
	// aggregate behaviour, not paper-level F1.
	if micro := set.MicroF1(); micro < 0.2 {
		t.Errorf("micro F1 = %v, want >= 0.2", micro)
	}
	// earn (largest, most distinctive) should be learnable even at this
	// budget.
	if f1 := set.Table("earn").F1(); f1 < 0.3 {
		t.Errorf("earn F1 = %v", f1)
	}
}

func TestScoreWithinSquashRange(t *testing.T) {
	m, c := trainedModel(t)
	for i := range c.Test[:10] {
		s, err := m.Score("earn", &c.Test[i])
		if err != nil {
			t.Fatal(err)
		}
		if s < -1 || s > 1 {
			t.Errorf("score %v out of [-1,1]", s)
		}
	}
	if _, err := m.Score("bogus", &c.Test[0]); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestClassifyReturnsInventoryOrder(t *testing.T) {
	m, c := trainedModel(t)
	pos := map[string]int{}
	for i, cat := range c.Categories {
		pos[cat] = i
	}
	for i := range c.Test[:20] {
		got, err := m.Classify(&c.Test[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(got); j++ {
			if pos[got[j-1]] > pos[got[j]] {
				t.Fatalf("labels out of inventory order: %v", got)
			}
		}
	}
}

func TestTraceShapesAndThresholdConsistency(t *testing.T) {
	m, c := trainedModel(t)
	doc := &c.Test[0]
	tr, err := m.Trace("earn", doc)
	if err != nil {
		t.Fatal(err)
	}
	cm := m.CategoryModelFor("earn")
	for i, p := range tr {
		if p.Output < -1 || p.Output > 1 {
			t.Errorf("trace[%d] output %v out of range", i, p.Output)
		}
		if p.InClass != (p.Output > cm.Threshold) {
			t.Errorf("trace[%d] InClass inconsistent", i)
		}
		if p.Word == "" {
			t.Errorf("trace[%d] empty word", i)
		}
	}
	// Final trace output equals Score.
	if len(tr) > 0 {
		s, err := m.Score("earn", doc)
		if err != nil {
			t.Fatal(err)
		}
		if got := tr[len(tr)-1].Output; got != s {
			t.Errorf("trace end %v != score %v", got, s)
		}
	}
	if _, err := m.Trace("bogus", doc); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestTraceAllCoversEveryCategory(t *testing.T) {
	m, c := trainedModel(t)
	all, err := m.TraceAll(&c.Test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(c.Categories) {
		t.Errorf("TraceAll covers %d categories, want %d", len(all), len(c.Categories))
	}
}

func TestRuleDisassembly(t *testing.T) {
	m, _ := trainedModel(t)
	rule, err := m.Rule("earn")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rule, "R0=R0") && !strings.Contains(rule, "R") {
		t.Errorf("rule looks wrong: %q", rule)
	}
	if _, err := m.Rule("bogus"); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestEvaluateCountsEveryDocumentOnce(t *testing.T) {
	m, c := trainedModel(t)
	set, err := m.Evaluate(c.Test)
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range c.Categories {
		if got := set.Table(cat).Total(); got != len(c.Test) {
			t.Errorf("category %s observed %d docs, want %d", cat, got, len(c.Test))
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tc := range cases {
		if got := median(tc.in); got != tc.want {
			t.Errorf("median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// median must not mutate its input.
	in := []float64{3, 1, 2}
	median(in)
	if in[0] != 3 {
		t.Error("median sorted its input in place")
	}
}

func TestTrainPerCategoryFeatureSelection(t *testing.T) {
	// MI selection is per-category; training must still succeed and use
	// disjoint keep-sets.
	c := smallCorpus(t)
	cfg := fastConfig(featsel.MI)
	cfg.GP.Tournaments = 40
	m, err := Train(cfg, c)
	if err != nil {
		t.Fatalf("Train(MI): %v", err)
	}
	if m.Selection().IsGlobal() {
		t.Error("MI selection reported global")
	}
}

func TestTrainDeterministic(t *testing.T) {
	c := smallCorpus(t)
	cfg := fastConfig(featsel.DF)
	cfg.GP.Tournaments = 40
	train := func() float64 {
		m, err := Train(cfg, c)
		if err != nil {
			t.Fatal(err)
		}
		return m.CategoryModelFor("earn").Fitness
	}
	if a, b := train(), train(); a != b {
		t.Errorf("training not deterministic: %v vs %v", a, b)
	}
}

func TestNonRecurrentAblationConfig(t *testing.T) {
	c := smallCorpus(t)
	cfg := fastConfig(featsel.DF)
	cfg.GP.Tournaments = 40
	cfg.GP.Recurrent = false
	m, err := Train(cfg, c)
	if err != nil {
		t.Fatalf("Train(non-recurrent): %v", err)
	}
	if _, err := m.Evaluate(c.Test[:5]); err != nil {
		t.Errorf("Evaluate: %v", err)
	}
}
