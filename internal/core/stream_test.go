package core

import (
	"math"
	"testing"
)

func TestNewStreamValidation(t *testing.T) {
	m, _ := trainedModel(t)
	if _, err := m.NewStream("bogus"); err == nil {
		t.Error("unknown category accepted")
	}
	s, err := m.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.State()) != len(m.Categories()) {
		t.Errorf("default stream tracks %d categories", len(s.State()))
	}
}

// The incremental stream must reproduce the batch trace exactly: same
// member words, same outputs.
func TestStreamMatchesBatchTrace(t *testing.T) {
	m, c := trainedModel(t)
	for i := range c.Test[:10] {
		doc := &c.Test[i]
		trace, err := m.Trace("earn", doc)
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.NewStream("earn")
		if err != nil {
			t.Fatal(err)
		}
		var streamOutputs []float64
		for _, w := range doc.Words {
			changed, err := s.Push(w)
			if err != nil {
				t.Fatal(err)
			}
			if st, ok := changed["earn"]; ok {
				streamOutputs = append(streamOutputs, st.Output)
			}
		}
		if len(streamOutputs) != len(trace) {
			t.Fatalf("doc %d: stream consumed %d member words, trace has %d",
				i, len(streamOutputs), len(trace))
		}
		for k := range trace {
			if math.Abs(streamOutputs[k]-trace[k].Output) > 1e-12 {
				t.Fatalf("doc %d word %d: stream %v != trace %v",
					i, k, streamOutputs[k], trace[k].Output)
			}
		}
		// Final state equals Score.
		want, err := m.Score("earn", doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) > 0 {
			if got := s.State()["earn"].Output; math.Abs(got-want) > 1e-12 {
				t.Fatalf("doc %d: final state %v != score %v", i, got, want)
			}
		}
	}
}

func TestStreamStateBookkeeping(t *testing.T) {
	m, c := trainedModel(t)
	s, err := m.NewStream("earn")
	if err != nil {
		t.Fatal(err)
	}
	doc := &c.Test[0]
	if _, err := s.PushAll(doc.Words); err != nil {
		t.Fatal(err)
	}
	if s.Words() != len(doc.Words) {
		t.Errorf("Words = %d, want %d", s.Words(), len(doc.Words))
	}
	st := s.State()["earn"]
	trace, _ := m.Trace("earn", doc)
	if st.Members != len(trace) {
		t.Errorf("Members = %d, want %d", st.Members, len(trace))
	}
	s.Reset()
	if s.Words() != 0 {
		t.Error("Reset did not clear word count")
	}
	if got := s.State()["earn"]; got.Output != 0 || got.Members != 0 || got.InClass {
		t.Errorf("Reset left state %+v", got)
	}
}

func TestStreamDocumentBoundary(t *testing.T) {
	// Processing doc A, resetting, then doc B must equal processing doc
	// B alone.
	m, c := trainedModel(t)
	a, b := &c.Test[0], &c.Test[1]
	s1, err := m.NewStream("earn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.PushAll(a.Words); err != nil {
		t.Fatal(err)
	}
	s1.Reset()
	got, err := s1.PushAll(b.Words)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.NewStream("earn")
	if err != nil {
		t.Fatal(err)
	}
	want, err := s2.PushAll(b.Words)
	if err != nil {
		t.Fatal(err)
	}
	if got["earn"] != want["earn"] {
		t.Errorf("state after reset %+v != fresh stream %+v", got["earn"], want["earn"])
	}
}

func TestThresholdF1Rule(t *testing.T) {
	c := smallCorpus(t)
	cfg := fastConfig("df")
	cfg.GP.Tournaments = 60
	cfg.Threshold = ThresholdF1
	m, err := Train(cfg, c)
	if err != nil {
		t.Fatalf("Train(ThresholdF1): %v", err)
	}
	for _, cat := range m.Categories() {
		thr := m.CategoryModelFor(cat).Threshold
		if thr < -1.1 || thr > 1.1 {
			t.Errorf("category %s threshold %v out of squash range", cat, thr)
		}
	}
	if _, err := m.Evaluate(c.Test[:5]); err != nil {
		t.Errorf("Evaluate: %v", err)
	}
}
