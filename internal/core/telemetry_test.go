package core

import (
	"bytes"
	"sync"
	"testing"

	"temporaldoc/internal/featsel"
	"temporaldoc/internal/telemetry"
)

// TestTelemetryDoesNotPerturbModel is the ISSUE's determinism gate:
// training with the full telemetry stack attached (registry, typed
// observer, legacy Progress shim) must persist byte-identical model
// snapshots to training with telemetry fully disabled.
func TestTelemetryDoesNotPerturbModel(t *testing.T) {
	c := smallCorpus(t)

	plain, err := Train(fastConfig(featsel.DF), c)
	if err != nil {
		t.Fatalf("Train (no telemetry): %v", err)
	}

	cfg := fastConfig(featsel.DF)
	cfg.Metrics = telemetry.NewRegistry()
	var mu sync.Mutex
	var events []TrainEvent
	cfg.Observer = ObserverFunc(func(e TrainEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	var progress int
	cfg.Progress = func(stage, detail string) {
		mu.Lock()
		progress++
		mu.Unlock()
	}
	traced, err := Train(cfg, c)
	if err != nil {
		t.Fatalf("Train (telemetry): %v", err)
	}

	var a, b bytes.Buffer
	if err := plain.Save(&a); err != nil {
		t.Fatalf("Save plain: %v", err)
	}
	if err := traced.Save(&b); err != nil {
		t.Fatalf("Save traced: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("model bytes differ with telemetry attached: %d vs %d bytes", a.Len(), b.Len())
	}

	// The observer must have seen every event kind the pipeline emits.
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, k := range []EventKind{EventSOMEpoch, EventEncoderReady, EventGeneration, EventCategoryTrained} {
		if kinds[k] == 0 {
			t.Errorf("no %s events observed (saw %v)", k, kinds)
		}
	}
	if kinds[EventEncoderReady] != 1 {
		t.Errorf("EventEncoderReady fired %d times, want 1", kinds[EventEncoderReady])
	}
	if want := len(c.Categories); kinds[EventCategoryTrained] != want {
		t.Errorf("EventCategoryTrained fired %d times, want %d", kinds[EventCategoryTrained], want)
	}
	// The legacy Progress shim keeps its contract alongside the observer:
	// one encoder milestone plus one call per category.
	if want := 1 + len(c.Categories); progress != want {
		t.Errorf("Progress fired %d times, want %d", progress, want)
	}

	// The registry must have covered SOM epochs, GP tournaments and the
	// encode-cache counters (trainCategory re-encodes each document per
	// restart through the cache).
	snap := cfg.Metrics.Snapshot()
	for _, name := range []string{"hsom.char.epochs", "hsom.word.epochs", "lgp.tournaments", "core.categories.trained", "core.encode.cache.misses"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q is zero in snapshot", name)
		}
	}
	if snap.Histograms["core.category.train.seconds"].Count == 0 {
		t.Errorf("core.category.train.seconds recorded no spans")
	}
}

// TestAttachTelemetryAfterLoad covers the Load path: a reconstructed
// model starts silent, and AttachTelemetry retrofits registry handles
// onto both the model and its encoder.
func TestAttachTelemetryAfterLoad(t *testing.T) {
	m, c := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	reg := telemetry.NewRegistry()
	loaded.AttachTelemetry(reg, nil)

	doc := c.Test[0]
	if _, err := loaded.Classify(&doc); err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if _, err := loaded.Classify(&doc); err != nil {
		t.Fatalf("Classify: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["core.encode.cache.hits"] == 0 {
		t.Errorf("second Classify of the same document missed the encode cache: %+v", snap.Counters)
	}
	if snap.Histograms["core.score.seconds"].Count == 0 {
		t.Errorf("core.score.seconds recorded no spans")
	}
	if snap.Histograms["core.classify.seconds"].Count != 2 {
		t.Errorf("core.classify.seconds count = %d, want 2", snap.Histograms["core.classify.seconds"].Count)
	}
}
