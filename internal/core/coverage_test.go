package core

import (
	"strings"
	"testing"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
)

func TestSetDefaultsFillsEverything(t *testing.T) {
	cfg := Config{}
	cfg.setDefaults()
	if cfg.FeatureMethod != featsel.DF {
		t.Errorf("FeatureMethod = %v", cfg.FeatureMethod)
	}
	if cfg.FeatureConfig.GlobalN != 1000 {
		t.Errorf("FeatureConfig = %+v", cfg.FeatureConfig)
	}
	if cfg.GP.PopulationSize != 125 {
		t.Errorf("GP defaults missing: %+v", cfg.GP)
	}
	if cfg.GP.NumInputs != 2 {
		t.Errorf("NumInputs = %d", cfg.GP.NumInputs)
	}
	if cfg.Restarts != 1 {
		t.Errorf("Restarts = %d", cfg.Restarts)
	}
	if cfg.Encoder.Seed == 0 {
		t.Error("encoder seed not derived")
	}
}

func TestEnsureCoverageNoOpWhenCovered(t *testing.T) {
	keep := map[string]bool{"wheat": true}
	docs := []corpus.Document{
		{ID: "1", Words: []string{"wheat", "crop"}},
		{ID: "2", Words: []string{"wheat"}},
	}
	got := ensureCoverage(keep, docs)
	if len(got) != 1 || !got["wheat"] {
		t.Errorf("covered case widened the keep set: %v", got)
	}
}

func TestEnsureCoverageWidensMinimally(t *testing.T) {
	keep := map[string]bool{}
	docs := []corpus.Document{
		{ID: "1", Words: []string{"common", "rare"}},
		{ID: "2", Words: []string{"common"}},
		{ID: "3", Words: []string{"common", "other"}},
	}
	got := ensureCoverage(keep, docs)
	// "common" covers every document by itself; the input map must not
	// be mutated.
	if !got["common"] {
		t.Errorf("most frequent word not added: %v", got)
	}
	if len(got) != 1 {
		t.Errorf("widened more than needed: %v", got)
	}
	if len(keep) != 0 {
		t.Error("input keep set mutated")
	}
}

func TestEnsureCoverageEmptyDocsIgnored(t *testing.T) {
	keep := map[string]bool{}
	docs := []corpus.Document{
		{ID: "1", Words: nil}, // can never be covered
		{ID: "2", Words: []string{"word"}},
	}
	got := ensureCoverage(keep, docs)
	if !got["word"] {
		t.Errorf("coverage skipped non-empty doc: %v", got)
	}
}

func TestModelEncoderAccessor(t *testing.T) {
	m, _ := trainedModel(t)
	if m.Encoder() == nil {
		t.Fatal("Encoder() nil")
	}
	if m.Encoder().Category("earn") == nil {
		t.Error("encoder missing category")
	}
}

func TestSimplifiedRule(t *testing.T) {
	m, _ := trainedModel(t)
	full, err := m.Rule("earn")
	if err != nil {
		t.Fatal(err)
	}
	simp, err := m.SimplifiedRule("earn")
	if err != nil {
		t.Fatal(err)
	}
	if len(simp) > len(full) {
		t.Errorf("simplified rule longer than original (%d > %d)", len(simp), len(full))
	}
	if simp != "" && !strings.Contains(simp, "R0") {
		t.Errorf("simplified rule lost the output register: %q", simp)
	}
	if _, err := m.SimplifiedRule("bogus"); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestTrainWithRestartsPicksBest(t *testing.T) {
	c := smallCorpus(t)
	cfg := fastConfig(featsel.DF)
	cfg.GP.Tournaments = 40
	cfg.Restarts = 2
	m, err := Train(cfg, c)
	if err != nil {
		t.Fatalf("Train(restarts=2): %v", err)
	}
	for _, cat := range m.Categories() {
		cm := m.CategoryModelFor(cat)
		if cm.Restart < 0 || cm.Restart > 1 {
			t.Errorf("category %s restart = %d", cat, cm.Restart)
		}
	}
}

func TestTrainBoundedParallelism(t *testing.T) {
	c := smallCorpus(t)
	cfg := fastConfig(featsel.DF)
	cfg.GP.Tournaments = 30
	cfg.Parallelism = 2
	if _, err := Train(cfg, c); err != nil {
		t.Fatalf("Train(parallelism=2): %v", err)
	}
}
