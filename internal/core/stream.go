package core

import (
	"fmt"

	"temporaldoc/internal/lgp"
)

// StreamState is the live state of one category classifier inside a
// Stream.
type StreamState struct {
	// Output is the squashed output-register value after the last
	// consumed word (0 before any word was consumed).
	Output float64
	// InClass reports Output > the category threshold.
	InClass bool
	// Members counts the member words consumed so far.
	Members int
}

// Stream runs every category classifier incrementally over a word
// stream: each pushed word is encoded on the fly (keep-set filter, word
// vector, BMU, Gaussian membership) and, when it is a member word of a
// category, stepped through that category's recurrent machine. This is
// the online form of the paper's word tracking — the register state
// lives across the whole stream, which is what the conclusion's Topic
// Detection and Tracking proposal needs.
type Stream struct {
	model    *Model
	cats     []string
	machines map[string]*lgp.Machine
	states   map[string]*StreamState
	words    int
}

// NewStream starts an incremental run over the given categories (all
// trained categories when none are named).
func (m *Model) NewStream(categories ...string) (*Stream, error) {
	if len(categories) == 0 {
		categories = m.cats
	}
	s := &Stream{
		model:    m,
		cats:     append([]string(nil), categories...),
		machines: make(map[string]*lgp.Machine, len(categories)),
		states:   make(map[string]*StreamState, len(categories)),
	}
	for _, cat := range categories {
		if m.perCat[cat] == nil {
			return nil, fmt.Errorf("core: category %q not trained", cat)
		}
		s.machines[cat] = lgp.NewMachine(m.cfg.GP.NumRegisters)
		s.states[cat] = &StreamState{}
	}
	return s, nil
}

// Push consumes one word and returns the categories whose state changed
// (i.e. for which the word was a member word), with their new states.
func (s *Stream) Push(word string) (map[string]StreamState, error) {
	sp := s.model.met.streamPushLat.Start()
	defer sp.End()
	s.model.met.streamWords.Inc()
	s.words++
	changed := make(map[string]StreamState)
	for _, cat := range s.cats {
		if !s.model.keepSets[cat][word] {
			continue
		}
		codes, err := s.model.encoder.Encode(cat, []string{word})
		if err != nil {
			return nil, err
		}
		code := codes[0]
		if !code.Member {
			continue
		}
		membership := code.Membership
		if s.model.cfg.DropMembershipInput {
			membership = 0
		}
		machine := s.machines[cat]
		if !s.model.cfg.GP.Recurrent {
			machine.Reset()
		}
		machine.Step(s.model.perCat[cat].Program, []float64{code.NormIndex, membership})
		st := s.states[cat]
		st.Output = lgp.Squash(machine.Output())
		st.InClass = st.Output > s.model.perCat[cat].Threshold
		st.Members++
		changed[cat] = *st
	}
	return changed, nil
}

// PushAll consumes a word sequence, returning the final states.
func (s *Stream) PushAll(words []string) (map[string]StreamState, error) {
	for _, w := range words {
		if _, err := s.Push(w); err != nil {
			return nil, err
		}
	}
	return s.State(), nil
}

// State returns the current state of every tracked category.
func (s *Stream) State() map[string]StreamState {
	out := make(map[string]StreamState, len(s.states))
	for cat, st := range s.states {
		out[cat] = *st
	}
	return out
}

// Words returns how many words have been pushed (member or not).
func (s *Stream) Words() int { return s.words }

// Reset clears all register state and counters — a document boundary.
func (s *Stream) Reset() {
	s.words = 0
	for _, cat := range s.cats {
		s.machines[cat].Reset()
		*s.states[cat] = StreamState{}
	}
}
