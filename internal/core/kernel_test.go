package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// TestKernelParityClassification is the system-level byte-identity wall:
// the table-driven sparse default kernel must produce the exact
// prediction bytes — scores included — the legacy dense path does, over
// the full synthetic test split.
func TestKernelParityClassification(t *testing.T) {
	m, c := trainedModel(t)
	defer func() {
		if err := m.SetKernel(""); err != nil {
			t.Fatal(err)
		}
	}()
	if got := m.Kernel(); got != "float64" {
		t.Fatalf("default kernel = %q", got)
	}
	classify := func() [][]Prediction {
		out := make([][]Prediction, len(c.Test))
		for i := range c.Test {
			preds, err := m.ClassifyDoc(&c.Test[i], nil)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = preds
		}
		return out
	}
	fast := classify()
	if err := m.SetKernel("legacy"); err != nil {
		t.Fatal(err)
	}
	legacy := classify()
	for i := range fast {
		for j := range fast[i] {
			a, b := fast[i][j], legacy[i][j]
			if a.Category != b.Category || a.InClass != b.InClass ||
				math.Float64bits(a.Score) != math.Float64bits(b.Score) {
				t.Fatalf("doc %d %s: sparse %+v, legacy %+v", i, a.Category, a, b)
			}
		}
	}
}

// TestSetKernelInvalidatesEncodeCache checks a kernel switch cannot
// serve encodings produced under the previous kernel.
func TestSetKernelInvalidatesEncodeCache(t *testing.T) {
	m, c := trainedModel(t)
	defer func() {
		if err := m.SetKernel(""); err != nil {
			t.Fatal(err)
		}
	}()
	if _, err := m.Classify(&c.Test[0]); err != nil {
		t.Fatal(err)
	}
	m.encMu.RLock()
	warm := len(m.encCache)
	m.encMu.RUnlock()
	if warm == 0 {
		t.Fatal("classification did not populate the encode cache")
	}
	if err := m.SetKernel("float32"); err != nil {
		t.Fatal(err)
	}
	m.encMu.RLock()
	after := len(m.encCache)
	m.encMu.RUnlock()
	if after != 0 {
		t.Fatalf("encode cache kept %d entries across a kernel switch", after)
	}
	if err := m.SetKernel("bogus"); err == nil {
		t.Fatal("SetKernel accepted an unknown kernel")
	}
}

// TestSnapshotUnchangedByKernel checks the kernel is a pure runtime
// knob: a model saved under float32 serialises to exactly the bytes it
// does under the default, and a load→save round trip reproduces the
// original bytes (snapshot files stay valid across this PR).
func TestSnapshotUnchangedByKernel(t *testing.T) {
	m, _ := trainedModel(t)
	defer func() {
		if err := m.SetKernel(""); err != nil {
			t.Fatal(err)
		}
	}()
	var base bytes.Buffer
	if err := m.Save(&base); err != nil {
		t.Fatal(err)
	}
	if err := m.SetKernel("float32"); err != nil {
		t.Fatal(err)
	}
	var f32 bytes.Buffer
	if err := m.Save(&f32); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base.Bytes(), f32.Bytes()) {
		t.Fatal("kernel choice leaked into the persisted snapshot")
	}
	loaded, err := Load(bytes.NewReader(base.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Kernel(); got != "float64" {
		t.Fatalf("loaded model kernel = %q, want the default", got)
	}
	var resaved bytes.Buffer
	if err := loaded.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base.Bytes(), resaved.Bytes()) {
		t.Fatal("save → load → save changed snapshot bytes")
	}
}

// TestFloat32KernelAccuracy is the accuracy gate on the opt-in float32
// kernel: over the synthetic test split, its macro-F1 may differ from
// float64 by at most 0.02. The bound is deliberately loose — the
// float32 sweep only ever flips BMUs whose top-2 distances agree within
// float32 noise, which perturbs a handful of borderline word codes, not
// whole documents — but it is a hard gate: a kernel bug that corrupts
// scores wholesale moves macro-F1 far beyond it.
func TestFloat32KernelAccuracy(t *testing.T) {
	m, c := trainedModel(t)
	defer func() {
		if err := m.SetKernel(""); err != nil {
			t.Fatal(err)
		}
	}()
	if err := m.SetKernel("float64"); err != nil {
		t.Fatal(err)
	}
	base, err := m.Evaluate(c.Test)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetKernel("float32"); err != nil {
		t.Fatal(err)
	}
	f32, err := m.Evaluate(c.Test)
	if err != nil {
		t.Fatal(err)
	}
	const bound = 0.02
	delta := math.Abs(base.MacroF1() - f32.MacroF1())
	if delta > bound {
		t.Fatalf("float32 macro-F1 %v vs float64 %v: |delta| %v exceeds %v",
			f32.MacroF1(), base.MacroF1(), delta, bound)
	}
	// Determinism: the float32 kernel must evaluate identically twice.
	again, err := m.Evaluate(c.Test)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f32.Pooled(), again.Pooled()) {
		t.Fatal("float32 evaluation is nondeterministic")
	}
}
