// Package core assembles the paper's full system: pre-processed
// documents flow through feature selection, the hierarchical SOM encoder
// and one recurrent linear-GP classifier per category. It owns the
// ensemble wiring the paper describes in section 8 — per-category binary
// classifiers run in parallel over a document, each with a threshold
// derived from the training-output medians (Equation 6) — plus the
// word-tracking traces of Figures 5 and 6.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/lgp"
	"temporaldoc/internal/metrics"
	"temporaldoc/internal/telemetry"
)

// Config parameterises end-to-end training. Zero values take the paper's
// defaults (scaled-down GP budgets are supplied by callers that need
// speed, e.g. tests).
type Config struct {
	// FeatureMethod selects DF, IG, MI or Nouns.
	FeatureMethod featsel.Method
	// FeatureConfig bounds the selected-feature counts; zero takes the
	// paper's Table 1 budget for the method.
	FeatureConfig featsel.Config
	// Encoder configures the hierarchical SOM; zero fields take the
	// paper's geometry (7×13 characters, 8×8 words, 3-BMU fan-out).
	Encoder hsom.Config
	// GP configures the RLGP classifiers; a zero value takes the paper's
	// Table 2 parameters.
	GP lgp.Config
	// Restarts is the number of independent GP initialisations per
	// category; the best rule wins (paper: 20). Zero means 1.
	Restarts int
	// Parallelism bounds concurrent category training. Zero means the
	// number of categories.
	Parallelism int
	// Workers is the evaluation-engine worker count threaded through the
	// pipeline: GP tournament evaluation (GP.Workers), SOM batch BMU
	// search (Encoder.Workers) and document evaluation parallelism all
	// default to it when they are unset. Zero leaves each stage's own
	// default (GOMAXPROCS). Results are bit-identical for any value.
	Workers int
	// DropMembershipInput zeroes the Gaussian-membership dimension of
	// every word code, leaving only the BMU index — the representation
	// ablation benchmarked in DESIGN.md.
	DropMembershipInput bool
	// Threshold selects how the per-category decision threshold is
	// derived from training outputs: ThresholdMedian (Equation 6, the
	// paper's rule; the default) or ThresholdF1 (the threshold that
	// maximises training F1 — an ablation of the Equation 6 design
	// choice).
	Threshold ThresholdRule
	// Progress, when non-nil, is called as training advances: once when
	// the encoder is ready ("encoder", "") and once per trained category
	// ("category", name). Calls may come from concurrent goroutines; the
	// callback must be safe for concurrent use. New code should prefer
	// Observer, which receives the same milestones (and much more) as
	// typed TrainEvents; Progress is kept as a shim and keeps firing
	// whether or not an Observer is installed.
	Progress func(stage, detail string)
	// Observer, when non-nil, receives typed TrainEvents covering SOM
	// epochs, GP tournaments and training milestones. Events may come
	// from concurrent goroutines. Observers are diagnostics-only: the
	// trained model's bytes are identical with or without one attached.
	Observer Observer
	// Metrics, when non-nil, is the telemetry registry the pipeline
	// records counters, gauges and latency histograms into (metric names
	// are listed in the README). A nil registry costs nothing: every
	// telemetry call no-ops without allocating.
	Metrics *telemetry.Registry
	// Seed drives every stochastic stage.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.FeatureMethod == "" {
		c.FeatureMethod = featsel.DF
	}
	if c.FeatureConfig == (featsel.Config{}) {
		c.FeatureConfig = featsel.DefaultConfig(c.FeatureMethod)
	}
	if c.GP.PopulationSize == 0 {
		c.GP = lgp.DefaultConfig()
	}
	c.GP.NumInputs = 2 // the word-code representation is 2-dimensional
	if c.Restarts <= 0 {
		c.Restarts = 1
	}
	if c.Encoder.Seed == 0 {
		c.Encoder.Seed = c.Seed + 1
	}
	if c.Workers > 0 {
		if c.GP.Workers == 0 {
			c.GP.Workers = c.Workers
		}
		if c.Encoder.Workers == 0 {
			c.Encoder.Workers = c.Workers
		}
		if c.Parallelism == 0 {
			c.Parallelism = c.Workers
		}
	}
}

// ThresholdRule selects the decision-threshold derivation.
type ThresholdRule string

// Supported threshold rules.
const (
	// ThresholdMedian is Equation 6:
	// T = median(median(inClass), median(outClass)). The empty string
	// also selects it.
	ThresholdMedian ThresholdRule = "median"
	// ThresholdF1 sweeps the training outputs for the threshold that
	// maximises training F1.
	ThresholdF1 ThresholdRule = "f1"
)

// CategoryModel is the trained machinery of one category: its evolved
// rule, decision threshold and training fitness.
type CategoryModel struct {
	Category  string
	Program   *lgp.Program
	Threshold float64
	Fitness   float64
	// Restart identifies which initialisation produced the winning rule.
	Restart int
}

// Model is a trained temporal document classifier. Models must not be
// copied after first use (they embed caches and pools); use pointers.
type Model struct {
	cfg       Config
	selection *featsel.Selection
	keepSets  map[string]map[string]bool
	encoder   *hsom.Encoder
	perCat    map[string]*CategoryModel
	cats      []string

	// met holds pre-resolved metric handles so the scoring hot path
	// never pays a registry map lookup; its zero value no-ops.
	met modelMetrics

	// machinePool recycles lgp.Machine instances across Score / Trace /
	// Evaluate calls, so scoring allocates no register files (and usually
	// re-uses an already-decoded program) on the hot path.
	machinePool sync.Pool

	// encMu guards encCache, the per-(category, document) cache of
	// encoded input sequences. Encoding a document — char-map NearestK
	// per character, word-map BMU per word — dominates Score, and
	// Classify/Evaluate re-score the same document once per category, so
	// caching by document identity-plus-content-hash removes all repeat
	// encodes. The cache is cleared wholesale when it exceeds
	// encodeCacheCap entries, bounding memory on streaming workloads.
	encMu    sync.RWMutex
	encCache map[encodeKey]encodedDoc
}

// encodeCacheCap bounds the encode cache; ~cap × (words per doc) small
// slices. Exceeding it drops the whole cache (cheap, simple, and the
// steady state of bounded evaluation sets never hits it).
const encodeCacheCap = 8192

type encodeKey struct {
	cat  string
	id   string
	hash uint64
}

type encodedDoc struct {
	inputs    [][]float64
	words     []string
	positions []int
}

// wordsHash is FNV-1a over the document's words, so a cache entry can
// never serve a stale encoding if a caller reuses a document ID for
// different content.
func wordsHash(words []string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range words {
		for i := 0; i < len(w); i++ {
			h ^= uint64(w[i])
			h *= prime64
		}
		h ^= 0xff // word separator
		h *= prime64
	}
	return h
}

// getMachine returns a pooled machine (or a fresh one).
func (m *Model) getMachine() *lgp.Machine {
	if v := m.machinePool.Get(); v != nil {
		m.met.poolHit.Inc()
		return v.(*lgp.Machine)
	}
	m.met.poolMiss.Inc()
	return lgp.NewMachine(m.cfg.GP.NumRegisters)
}

func (m *Model) putMachine(mac *lgp.Machine) { m.machinePool.Put(mac) }

// TracePoint is the per-word classifier state used by the Figure 5/6
// word-tracking views.
type TracePoint struct {
	// Word is the member word that was input.
	Word string
	// WordIndex is the word's position in the original document (before
	// feature and membership filtering).
	WordIndex int
	// Output is the squashed output-register value after the word.
	Output float64
	// InClass reports Output > the category threshold at this point.
	InClass bool
}

// Train fits the full system on the corpus training split.
func Train(cfg Config, c *corpus.Corpus) (*Model, error) {
	cfg.setDefaults()
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	sel, err := featsel.Select(cfg.FeatureMethod, c.Train, c.Categories, cfg.FeatureConfig)
	if err != nil {
		return nil, fmt.Errorf("core: feature selection: %w", err)
	}

	// The word SOM of category Ci trains on the (feature-filtered) words
	// of Ci's own training documents, in order and with repetition
	// (section 5).
	perCategory := make(map[string][]corpus.Document, len(c.Categories))
	keepSets := make(map[string]map[string]bool, len(c.Categories))
	for _, cat := range c.Categories {
		keep := sel.KeepFor(cat)
		inClass := c.TrainFor(cat)
		// Coverage guarantee: when an aggressive (or heavily scaled-down)
		// feature budget leaves a category's training documents empty,
		// widen its keep-set with the category's own most frequent words
		// until every in-class document retains at least one word — the
		// same every-document-covered discipline the paper applies to
		// BMU selection (section 6.2).
		keep = ensureCoverage(keep, inClass)
		keepSets[cat] = keep
		var docs []corpus.Document
		for _, d := range inClass {
			fd := corpus.FilterWords(d, keep)
			if len(fd.Words) > 0 {
				docs = append(docs, fd)
			}
		}
		if len(docs) == 0 {
			return nil, fmt.Errorf("core: category %q has no training words after feature selection", cat)
		}
		perCategory[cat] = docs
	}
	// Thread the telemetry sinks into the encoder; the hooks are
	// read-only observers, so training results are unaffected.
	if cfg.Encoder.Metrics == nil {
		cfg.Encoder.Metrics = cfg.Metrics
	}
	if cfg.Encoder.Epoch == nil {
		cfg.Encoder.Epoch = cfg.somEpochHook()
	}
	encSpan := cfg.Metrics.Timer("core.encoder.train.seconds").Start()
	var encStart time.Time
	if cfg.Observer != nil {
		encStart = time.Now()
	}
	encoder, err := hsom.Train(cfg.Encoder, perCategory)
	if err != nil {
		return nil, fmt.Errorf("core: encoder: %w", err)
	}
	encSpan.End()
	var encDur time.Duration
	if cfg.Observer != nil {
		encDur = time.Since(encStart)
	}
	cfg.emit(TrainEvent{Kind: EventEncoderReady, Duration: encDur})

	m := &Model{
		cfg:       cfg,
		selection: sel,
		keepSets:  keepSets,
		encoder:   encoder,
		perCat:    make(map[string]*CategoryModel, len(c.Categories)),
		cats:      append([]string(nil), c.Categories...),
		met:       newModelMetrics(cfg.Metrics),
	}

	parallelism := cfg.Parallelism
	if parallelism <= 0 {
		parallelism = len(c.Categories)
	}
	sem := make(chan struct{}, parallelism)
	catTimer := cfg.Metrics.Timer("core.category.train.seconds")
	catCount := cfg.Metrics.Counter("core.categories.trained")
	observing := cfg.Observer != nil || cfg.Progress != nil
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, cat := range c.Categories {
		wg.Add(1)
		go func(cat string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			catSpan := catTimer.Start()
			var catStart time.Time
			if observing {
				catStart = time.Now()
			}
			cm, err := m.trainCategory(cat, c.Train)
			catSpan.End()
			if err == nil {
				catCount.Inc()
				if observing {
					cfg.emit(TrainEvent{
						Kind:      EventCategoryTrained,
						Category:  cat,
						Restart:   cm.Restart,
						Fitness:   cm.Fitness,
						Threshold: cm.Threshold,
						Duration:  time.Since(catStart),
					})
				}
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("core: category %s: %w", cat, err)
				}
				return
			}
			m.perCat[cat] = cm
		}(cat)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// encode turns a document into the category's RLGP input sequence:
// ordered (NormIndex, Membership) pairs of its member words, plus the
// member words themselves and their positions in the original document.
func (m *Model) encode(cat string, doc *corpus.Document) ([][]float64, []string, []int, error) {
	keep := m.keepSets[cat]
	filteredWords := make([]string, 0, len(doc.Words))
	origIdx := make([]int, 0, len(doc.Words))
	for i, w := range doc.Words {
		if keep[w] {
			filteredWords = append(filteredWords, w)
			origIdx = append(origIdx, i)
		}
	}
	codes, err := m.encoder.Encode(cat, filteredWords)
	if err != nil {
		return nil, nil, nil, err
	}
	inputs := make([][]float64, 0, len(codes))
	words := make([]string, 0, len(codes))
	positions := make([]int, 0, len(codes))
	for k, code := range codes {
		if !code.Member {
			continue
		}
		membership := code.Membership
		if m.cfg.DropMembershipInput {
			membership = 0
		}
		inputs = append(inputs, []float64{code.NormIndex, membership})
		words = append(words, code.Word)
		positions = append(positions, origIdx[k])
	}
	return inputs, words, positions, nil
}

// encodeCached is encode behind the per-(category, document) cache used
// on the scoring path. The returned slices are shared cache state —
// callers must treat them as read-only.
func (m *Model) encodeCached(cat string, doc *corpus.Document) ([][]float64, []string, []int, error) {
	key := encodeKey{cat: cat, id: doc.ID, hash: wordsHash(doc.Words)}
	m.encMu.RLock()
	e, ok := m.encCache[key]
	m.encMu.RUnlock()
	if ok {
		m.met.encHit.Inc()
		return e.inputs, e.words, e.positions, nil
	}
	m.met.encMiss.Inc()
	inputs, words, positions, err := m.encode(cat, doc)
	if err != nil {
		return nil, nil, nil, err
	}
	m.encMu.Lock()
	if m.encCache == nil || len(m.encCache) >= encodeCacheCap {
		m.encCache = make(map[encodeKey]encodedDoc)
	}
	m.encCache[key] = encodedDoc{inputs: inputs, words: words, positions: positions}
	m.encMu.Unlock()
	return inputs, words, positions, nil
}

func (m *Model) trainCategory(cat string, train []corpus.Document) (*CategoryModel, error) {
	examples := make([]lgp.Example, 0, len(train))
	for i := range train {
		// The cached path keeps training determinism (encodings are pure
		// functions of the document) while letting the encode-cache
		// hit/miss counters cover training workloads too.
		inputs, _, _, err := m.encodeCached(cat, &train[i])
		if err != nil {
			return nil, err
		}
		label := -1.0
		if train[i].HasCategory(cat) {
			label = 1.0
		}
		examples = append(examples, lgp.Example{Inputs: inputs, Label: label})
	}

	var best *lgp.Result
	bestRestart := 0
	for r := 0; r < m.cfg.Restarts; r++ {
		gpCfg := m.cfg.GP
		gpCfg.Seed = m.cfg.Seed + int64(r)*7919 + int64(len(cat))*104729
		gpCfg.Trace = m.gpTraceHook(cat, r)
		trainer, err := lgp.NewTrainer(gpCfg, examples)
		if err != nil {
			return nil, err
		}
		res := trainer.Run()
		if best == nil || res.Fitness < best.Fitness {
			best, bestRestart = res, r
		}
	}

	machine := m.getMachine()
	defer m.putMachine(machine)
	outs := make([]float64, len(examples))
	for i := range examples {
		outs[i] = m.runExample(machine, best.Best, examples[i].Inputs)
	}
	var threshold float64
	if m.cfg.Threshold == ThresholdF1 {
		labels := make([]bool, len(examples))
		for i := range examples {
			labels[i] = examples[i].Label > 0
		}
		threshold = metrics.BestF1Threshold(outs, labels)
	} else {
		// Equation 6: T = median(median(inClass), median(outClass)) over
		// the raw training outputs.
		var inOuts, outOuts []float64
		for i := range examples {
			if examples[i].Label > 0 {
				inOuts = append(inOuts, outs[i])
			} else {
				outOuts = append(outOuts, outs[i])
			}
		}
		threshold = median([]float64{median(inOuts), median(outOuts)})
	}
	return &CategoryModel{
		Category:  cat,
		Program:   best.Best,
		Threshold: threshold,
		Fitness:   best.Fitness,
		Restart:   bestRestart,
	}, nil
}

// runExample scores one encoded document with the machine's register
// file, once per (program, document) pair in the evolution loop.
//
//tdlint:hotpath
func (m *Model) runExample(machine *lgp.Machine, p *lgp.Program, inputs [][]float64) float64 {
	if m.cfg.GP.Recurrent {
		return machine.RunSequence(p, inputs)
	}
	return machine.RunSequenceNonRecurrent(p, inputs)
}

// ensureCoverage widens keep with the in-class documents' most frequent
// words (ties broken alphabetically) until every document retains at
// least one kept word. The input map is not mutated.
func ensureCoverage(keep map[string]bool, inClass []corpus.Document) map[string]bool {
	covered := func(d *corpus.Document, k map[string]bool) bool {
		for _, w := range d.Words {
			if k[w] {
				return true
			}
		}
		return len(d.Words) == 0 // empty documents can never be covered
	}
	allCovered := true
	for i := range inClass {
		if !covered(&inClass[i], keep) {
			allCovered = false
			break
		}
	}
	if allCovered {
		return keep
	}
	out := make(map[string]bool, len(keep))
	for w := range keep {
		out[w] = true
	}
	freq := make(map[string]int)
	for i := range inClass {
		for _, w := range inClass[i].Words {
			freq[w]++
		}
	}
	type wc struct {
		w string
		c int
	}
	ranked := make([]wc, 0, len(freq))
	for w, c := range freq {
		ranked = append(ranked, wc{w, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].w < ranked[j].w
	})
	for _, r := range ranked {
		if out[r.w] {
			continue
		}
		out[r.w] = true
		done := true
		for i := range inClass {
			if !covered(&inClass[i], out) {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	return out
}

// Keep returns the effective per-category keep-set the model filters
// documents with (the feature selection plus any coverage fallback).
func (m *Model) Keep(cat string) map[string]bool {
	out := make(map[string]bool, len(m.keepSets[cat]))
	for w := range m.keepSets[cat] {
		out[w] = true
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Categories lists the trained category names.
func (m *Model) Categories() []string { return append([]string(nil), m.cats...) }

// CategoryModelFor returns the trained per-category machinery, or nil.
func (m *Model) CategoryModelFor(cat string) *CategoryModel { return m.perCat[cat] }

// Selection exposes the feature selection the model was trained with.
func (m *Model) Selection() *featsel.Selection { return m.selection }

// FeatureMethod returns the feature-selection method the model was
// trained with (and a persisted snapshot records in its header).
func (m *Model) FeatureMethod() featsel.Method { return m.cfg.FeatureMethod }

// Encoder exposes the trained hierarchical SOM encoder.
func (m *Model) Encoder() *hsom.Encoder { return m.encoder }

// SetKernel selects the encoder's level-2 distance kernel by name
// ("float64", "float32", "legacy"; "" is the default). The choice is a
// runtime knob — never persisted, snapshots always carry float64
// weights. Switching drops the encode cache: cached encodings were
// produced under the previous kernel. Not safe to call concurrently
// with classification; services set it once per loaded model.
func (m *Model) SetKernel(name string) error {
	k, err := hsom.ParseKernel(name)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := m.encoder.SetKernel(k); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	m.encMu.Lock()
	m.encCache = nil
	m.encMu.Unlock()
	return nil
}

// Kernel returns the active level-2 kernel name.
func (m *Model) Kernel() string { return string(m.encoder.Kernel()) }

// Rule returns the evolved classification rule of a category in the
// paper's "R1=R1-I1; ..." notation.
func (m *Model) Rule(cat string) (string, error) {
	cm := m.perCat[cat]
	if cm == nil {
		return "", fmt.Errorf("core: category %q not trained", cat)
	}
	return cm.Program.Disassemble(m.cfg.GP.NumRegisters, m.cfg.GP.NumInputs), nil
}

// SimplifiedRule returns the evolved rule with structural introns
// removed (behaviour-preserving; see lgp.Program.Simplify), in the
// paper's notation.
func (m *Model) SimplifiedRule(cat string) (string, error) {
	cm := m.perCat[cat]
	if cm == nil {
		return "", fmt.Errorf("core: category %q not trained", cat)
	}
	s := cm.Program.Simplify(m.cfg.GP.NumRegisters, m.cfg.GP.Recurrent)
	return s.Disassemble(m.cfg.GP.NumRegisters, m.cfg.GP.NumInputs), nil
}

// Score runs the document through one category's classifier and returns
// the squashed output-register value.
func (m *Model) Score(cat string, doc *corpus.Document) (float64, error) {
	cm := m.perCat[cat]
	if cm == nil {
		return 0, fmt.Errorf("core: category %q not trained", cat)
	}
	sp := m.met.scoreLat.Start()
	inputs, _, _, err := m.encodeCached(cat, doc)
	if err != nil {
		return 0, err
	}
	machine := m.getMachine()
	out := m.runExample(machine, cm.Program, inputs)
	m.putMachine(machine)
	sp.End()
	return out, nil
}

// Classify runs the document through every category classifier in
// parallel (as the paper does) and returns the categories whose output
// exceeds their thresholds, in the corpus inventory order. Multi-label
// documents naturally receive multiple categories.
func (m *Model) Classify(doc *corpus.Document) ([]string, error) {
	sp := m.met.classifyLat.Start()
	defer sp.End()
	var out []string
	for _, cat := range m.cats {
		score, err := m.Score(cat, doc)
		if err != nil {
			return nil, err
		}
		if score > m.perCat[cat].Threshold {
			out = append(out, cat)
		}
	}
	return out, nil
}

// Prediction is one category's decision for a document, as produced by
// ClassifyDoc: the raw squashed output-register value and whether it
// clears the category's threshold.
type Prediction struct {
	Category string
	Score    float64
	InClass  bool
}

// ClassifyDoc scores the document against every trained category in the
// corpus inventory order, appending one Prediction per category to out
// and returning the extended slice. It is the serving layer's entry
// point: safe for concurrent use (scoring is read-only on the model,
// the encode cache is lock-guarded and machines come from the pool) and
// allocation-free on the hot path when cap(out)-len(out) is at least
// the category count — callers reuse the slice across requests.
//
//tdlint:hotpath
func (m *Model) ClassifyDoc(doc *corpus.Document, out []Prediction) ([]Prediction, error) {
	sp := m.met.classifyLat.Start()
	for _, cat := range m.cats {
		score, err := m.Score(cat, doc)
		if err != nil {
			return out, err
		}
		out = append(out, Prediction{
			Category: cat,
			Score:    score,
			InClass:  score > m.perCat[cat].Threshold,
		})
	}
	sp.End()
	return out, nil
}

// Trace returns the per-word classifier trajectory of a document under
// one category's classifier — the Figure 5 view. Only member words
// appear (non-member words do not reach the classifier).
func (m *Model) Trace(cat string, doc *corpus.Document) ([]TracePoint, error) {
	cm := m.perCat[cat]
	if cm == nil {
		return nil, fmt.Errorf("core: category %q not trained", cat)
	}
	inputs, words, positions, err := m.encodeCached(cat, doc)
	if err != nil {
		return nil, err
	}
	machine := m.getMachine()
	outs := machine.Trace(cm.Program, inputs)
	m.putMachine(machine)
	points := make([]TracePoint, len(outs))
	for i := range outs {
		points[i] = TracePoint{
			Word:      words[i],
			WordIndex: positions[i],
			Output:    outs[i],
			InClass:   outs[i] > cm.Threshold,
		}
	}
	return points, nil
}

// TraceAll returns per-category traces for a document — the Figure 6
// multi-label word-tracking view, keyed by category.
func (m *Model) TraceAll(doc *corpus.Document) (map[string][]TracePoint, error) {
	out := make(map[string][]TracePoint, len(m.cats))
	for _, cat := range m.cats {
		tr, err := m.Trace(cat, doc)
		if err != nil {
			return nil, err
		}
		out[cat] = tr
	}
	return out, nil
}

// Evaluate scores the model over documents, producing per-category
// contingency tables (Tables 4–6 inputs). Documents are classified
// concurrently (classification is read-only on the model); aggregation
// is deterministic.
func (m *Model) Evaluate(docs []corpus.Document) (*metrics.Set, error) {
	workers := m.cfg.Parallelism
	if workers <= 0 {
		workers = 4
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers < 1 {
		workers = 1
	}
	type result struct {
		predicted map[string]bool
		err       error
	}
	results := make([]result, len(docs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				predicted, err := m.Classify(&docs[i])
				m.met.evaluatedDocs.Inc()
				if err != nil {
					results[i] = result{err: err}
					continue
				}
				predSet := make(map[string]bool, len(predicted))
				for _, p := range predicted {
					predSet[p] = true
				}
				results[i] = result{predicted: predSet}
			}
		}()
	}
	for i := range docs {
		next <- i
	}
	close(next)
	wg.Wait()

	set := metrics.NewSet()
	for i := range docs {
		if results[i].err != nil {
			return nil, results[i].err
		}
		for _, cat := range m.cats {
			set.Observe(cat, docs[i].HasCategory(cat), results[i].predicted[cat])
		}
	}
	return set, nil
}
