package core

import (
	"time"

	"temporaldoc/internal/lgp"
	"temporaldoc/internal/som"
	"temporaldoc/internal/telemetry"
)

// EventKind discriminates TrainEvents.
type EventKind string

// Event kinds, in roughly the order they occur during Train.
const (
	// EventSOMEpoch fires after each SOM training epoch of either
	// encoder level (Level "char" or "word"; Category set for "word").
	EventSOMEpoch EventKind = "som_epoch"
	// EventEncoderReady fires once when the hierarchical encoder is
	// trained (the old Progress("encoder", "") moment).
	EventEncoderReady EventKind = "encoder_ready"
	// EventGeneration fires after every GP tournament of a category's
	// evolution (the paper calls tournaments "generations").
	EventGeneration EventKind = "generation"
	// EventCategoryTrained fires when one category's classifier is ready
	// (the old Progress("category", name) moment).
	EventCategoryTrained EventKind = "category_trained"
)

// TrainEvent is one structured training-progress event. Only the fields
// relevant to the Kind are set; the zero values of the rest are omitted
// from JSON, so JSONL traces stay compact. Events are emitted from the
// goroutine doing the work — per-category trainers run concurrently, so
// observers must be safe for concurrent use (as Progress always had to
// be).
type TrainEvent struct {
	Kind     EventKind `json:"kind"`
	Category string    `json:"category,omitempty"`

	// SOM-epoch fields (Kind == EventSOMEpoch).
	Level        string  `json:"level,omitempty"` // "char" or "word"
	Epoch        int     `json:"epoch,omitempty"`
	AWC          float64 `json:"awc,omitempty"`
	QuantError   float64 `json:"quant_error,omitempty"`
	Radius       float64 `json:"radius,omitempty"`
	LearningRate float64 `json:"learning_rate,omitempty"`

	// Generation fields (Kind == EventGeneration). Restart also applies
	// to EventCategoryTrained, where it names the winning restart.
	Restart     int     `json:"restart,omitempty"`
	Tournament  int     `json:"tournament,omitempty"`
	BestFitness float64 `json:"best_fitness,omitempty"`
	MeanFitness float64 `json:"mean_fitness,omitempty"`
	MeanLen     float64 `json:"mean_len,omitempty"`
	PageSize    int     `json:"page_size,omitempty"`
	SubsetSize  int     `json:"subset_size,omitempty"`

	// Category-trained fields (Kind == EventCategoryTrained).
	Fitness   float64 `json:"fitness,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`

	// Duration is the wall-clock time of the unit of work the event
	// reports (epoch, tournament or whole category training).
	Duration time.Duration `json:"duration_ns,omitempty"`
}

// Observer receives structured TrainEvents as training advances — the
// typed successor of Config.Progress. Implementations must be safe for
// concurrent use: per-category trainers emit from their own goroutines.
// Observers are diagnostics-only; nothing they do can alter training.
type Observer interface {
	OnTrainEvent(TrainEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(TrainEvent)

// OnTrainEvent calls f(e).
func (f ObserverFunc) OnTrainEvent(e TrainEvent) { f(e) }

// emit fans one event out to the configured observer and the legacy
// Progress shim. The Progress callback keeps its exact historical
// contract: ("encoder", "") once, then ("category", name) per category.
func (c *Config) emit(e TrainEvent) {
	if c.Observer != nil {
		c.Observer.OnTrainEvent(e)
	}
	if c.Progress != nil {
		switch e.Kind {
		case EventEncoderReady:
			c.Progress("encoder", "")
		case EventCategoryTrained:
			c.Progress("category", e.Category)
		default:
			// Epoch- and tournament-level kinds are deliberately not
			// forwarded: Progress keeps its historical two-milestone
			// contract.
		}
	}
}

// somEpochHook adapts hsom's per-epoch callback into TrainEvents.
func (c *Config) somEpochHook() func(level, category string, s som.EpochStats) {
	if c.Observer == nil {
		return nil
	}
	return func(level, category string, s som.EpochStats) {
		c.emit(TrainEvent{
			Kind:         EventSOMEpoch,
			Category:     category,
			Level:        level,
			Epoch:        s.Epoch,
			AWC:          s.AWC,
			QuantError:   s.QuantError,
			Radius:       s.Radius,
			LearningRate: s.LearningRate,
			Duration:     s.Duration,
		})
	}
}

// gpTraceHook adapts one restart's lgp tournament trace into
// TrainEvents and registry metrics, or returns nil when both sinks are
// disabled (leaving the trainer's untraced fast path).
func (m *Model) gpTraceHook(cat string, restart int) func(lgp.TournamentStats) {
	if m.cfg.Observer == nil && m.cfg.Metrics == nil {
		return nil
	}
	tournaments := m.cfg.Metrics.Counter("lgp.tournaments")
	latency := m.cfg.Metrics.Timer("lgp.tournament.seconds")
	best := m.cfg.Metrics.Gauge("lgp.best_fitness")
	return func(s lgp.TournamentStats) {
		tournaments.Inc()
		latency.Observe(s.Duration)
		best.Set(s.Best)
		m.cfg.emit(TrainEvent{
			Kind:        EventGeneration,
			Category:    cat,
			Restart:     restart,
			Tournament:  s.Tournament,
			BestFitness: s.Best,
			MeanFitness: s.Mean,
			MeanLen:     s.MeanLen,
			PageSize:    s.PageSize,
			SubsetSize:  s.SubsetSize,
			Duration:    s.Duration,
		})
	}
}

// modelMetrics holds the model's pre-resolved runtime metric handles.
// The zero value (nil handles) is the no-op default, so scoring pays a
// nil check — not a map lookup — per metric when telemetry is off.
type modelMetrics struct {
	scoreLat      telemetry.Timer
	classifyLat   telemetry.Timer
	encHit        *telemetry.Counter
	encMiss       *telemetry.Counter
	poolHit       *telemetry.Counter
	poolMiss      *telemetry.Counter
	evaluatedDocs *telemetry.Counter
	streamPushLat telemetry.Timer
	streamWords   *telemetry.Counter
}

func newModelMetrics(reg *telemetry.Registry) modelMetrics {
	if reg == nil {
		return modelMetrics{}
	}
	return modelMetrics{
		scoreLat:      reg.Timer("core.score.seconds"),
		classifyLat:   reg.Timer("core.classify.seconds"),
		encHit:        reg.Counter("core.encode.cache.hits"),
		encMiss:       reg.Counter("core.encode.cache.misses"),
		poolHit:       reg.Counter("core.machine.pool.hits"),
		poolMiss:      reg.Counter("core.machine.pool.misses"),
		evaluatedDocs: reg.Counter("core.evaluate.docs"),
		streamPushLat: reg.Timer("core.stream.push.seconds"),
		streamWords:   reg.Counter("core.stream.words"),
	}
}

// AttachTelemetry points the model's (and its encoder's) runtime metric
// handles at reg and installs obs as the training observer for any
// later use of the config; either may be nil to detach. Models
// reconstructed by Load start without telemetry; classification
// services attach a registry here. Not safe to call concurrently with
// scoring.
func (m *Model) AttachTelemetry(reg *telemetry.Registry, obs Observer) {
	m.cfg.Metrics = reg
	m.cfg.Observer = obs
	m.met = newModelMetrics(reg)
	if m.encoder != nil {
		m.encoder.AttachTelemetry(reg)
	}
}
