package core

import (
	"fmt"
	"sort"
	"strings"
)

// CategoryReport summarises one trained category's machinery.
type CategoryReport struct {
	Category        string
	KeepWords       int
	SelectedBMUs    int
	RuleLength      int
	EffectiveLength int
	Threshold       float64
	Fitness         float64
	Restart         int
}

// Report summarises a trained model: feature selection, encoder
// geometry, and per-category rule statistics. Intended for operational
// inspection of persisted models.
type Report struct {
	FeatureMethod string
	Categories    []CategoryReport
	CharMapUnits  int
	WordMapUnits  int
	Recurrent     bool
}

// Report builds the inspection summary.
func (m *Model) Report() *Report {
	r := &Report{
		FeatureMethod: string(m.cfg.FeatureMethod),
		CharMapUnits:  m.encoder.CharMap().Units(),
		Recurrent:     m.cfg.GP.Recurrent,
	}
	cats := append([]string(nil), m.cats...)
	sort.Strings(cats)
	for _, cat := range cats {
		cm := m.perCat[cat]
		ce := m.encoder.Category(cat)
		cr := CategoryReport{
			Category:        cat,
			KeepWords:       len(m.keepSets[cat]),
			RuleLength:      len(cm.Program.Code),
			EffectiveLength: cm.Program.EffectiveLength(m.cfg.GP.NumRegisters),
			Threshold:       cm.Threshold,
			Fitness:         cm.Fitness,
			Restart:         cm.Restart,
		}
		if ce != nil {
			cr.SelectedBMUs = len(ce.SelectedBMUs())
			if r.WordMapUnits == 0 {
				r.WordMapUnits = ce.Map.Units()
			}
		}
		r.Categories = append(r.Categories, cr)
	}
	return r
}

// Format renders the report as a table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model: feature method %s, char map %d units, word maps %d units, recurrent=%v\n",
		r.FeatureMethod, r.CharMapUnits, r.WordMapUnits, r.Recurrent)
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %10s %10s %8s\n",
		"category", "keep", "BMUs", "ruleLen", "effLen", "threshold", "fitness", "restart")
	for _, c := range r.Categories {
		fmt.Fprintf(&b, "%-12s %8d %8d %8d %8d %10.3f %10.2f %8d\n",
			c.Category, c.KeepWords, c.SelectedBMUs, c.RuleLength,
			c.EffectiveLength, c.Threshold, c.Fitness, c.Restart)
	}
	return b.String()
}
