package core

import (
	"testing"

	"temporaldoc/internal/corpus"
	"temporaldoc/internal/featsel"
)

func cvVariants() map[string]func(Config) Config {
	return map[string]func(Config) Config{
		"df": func(cfg Config) Config {
			cfg.FeatureMethod = featsel.DF
			return cfg
		},
		"mi": func(cfg Config) Config {
			cfg.FeatureMethod = featsel.MI
			return cfg
		},
	}
}

func TestCrossValidateValidation(t *testing.T) {
	c := smallCorpus(t)
	base := fastConfig(featsel.DF)
	if _, err := CrossValidate(base, c, 1, cvVariants()); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := CrossValidate(base, c, 2, nil); err == nil {
		t.Error("no variants accepted")
	}
	if _, err := CrossValidate(base, &corpus.Corpus{}, 2, cvVariants()); err == nil {
		t.Error("invalid corpus accepted")
	}
	tiny := &corpus.Corpus{
		Train:      c.Train[:3],
		Test:       c.Test[:1],
		Categories: c.Categories,
	}
	if _, err := CrossValidate(base, tiny, 5, cvVariants()); err == nil {
		t.Error("too few documents for folds accepted")
	}
}

func TestCrossValidateRanksVariants(t *testing.T) {
	c := smallCorpus(t)
	base := fastConfig(featsel.DF)
	base.GP.Tournaments = 60
	results, err := CrossValidate(base, c, 2, cvVariants())
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Sorted descending by mean macro F1.
	if results[0].MeanMacroF1 < results[1].MeanMacroF1 {
		t.Errorf("results unsorted: %v", results)
	}
	for _, r := range results {
		if len(r.FoldMacroF1) != 2 {
			t.Errorf("variant %s has %d folds", r.Name, len(r.FoldMacroF1))
		}
		if r.MeanMacroF1 < 0 || r.MeanMacroF1 > 1 || r.MeanMicroF1 < 0 || r.MeanMicroF1 > 1 {
			t.Errorf("variant %s out-of-range scores: %+v", r.Name, r)
		}
	}
}

func TestCrossValidateNeverTouchesTestSplit(t *testing.T) {
	c := smallCorpus(t)
	// Corrupt the test split: cross-validation must still succeed
	// because it only uses Train.
	mangled := &corpus.Corpus{
		Train:      c.Train,
		Test:       []corpus.Document{{ID: "only", Words: []string{"x"}, Categories: []string{"earn"}}},
		Categories: c.Categories,
	}
	base := fastConfig(featsel.DF)
	base.GP.Tournaments = 40
	if _, err := CrossValidate(base, mangled, 2, map[string]func(Config) Config{
		"df": func(cfg Config) Config { return cfg },
	}); err != nil {
		t.Fatalf("CrossValidate used the test split? %v", err)
	}
}
