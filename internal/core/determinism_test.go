package core

import (
	"bytes"
	"runtime"
	"testing"

	"temporaldoc/internal/featsel"
)

// TestTrainDeterministicAcrossWorkers trains the same corpus with the
// serial engine and with several parallel worker counts and requires the
// persisted models to be byte-identical: the parallel evaluation engine
// must not change a single bit of any trained program, threshold or SOM
// weight.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	c := smallCorpus(t)
	persisted := func(workers int) []byte {
		cfg := fastConfig(featsel.DF)
		cfg.GP.Tournaments = 40
		cfg.Workers = workers
		m, err := Train(cfg, c)
		if err != nil {
			t.Fatalf("Train(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("Save(workers=%d): %v", workers, err)
		}
		return buf.Bytes()
	}
	want := persisted(1)
	for _, workers := range []int{4, 0} {
		if got := persisted(workers); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: persisted model differs from the serial run", workers)
		}
	}
}

// TestTrainDeterministicAcrossGOMAXPROCS retrains with identical seeds
// under different GOMAXPROCS settings — twice per setting, so repeated
// runs on the same schedule are covered too — and requires every
// persisted model to be byte-identical. Scheduler pressure must not
// reorder a single float accumulation into the model; this is the
// dynamic half of the contract tdlint's determinism analyzer checks
// statically.
func TestTrainDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("retrains the pipeline several times")
	}
	c := smallCorpus(t)
	persisted := func() []byte {
		cfg := fastConfig(featsel.DF)
		cfg.GP.Tournaments = 40
		cfg.Workers = 0 // all available parallelism at each setting
		m, err := Train(cfg, c)
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
		return buf.Bytes()
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	settings := []int{1, 2}
	if prev > 2 {
		settings = append(settings, prev)
	}
	var want []byte
	for _, procs := range settings {
		runtime.GOMAXPROCS(procs)
		for run := 0; run < 2; run++ {
			got := persisted()
			if want == nil {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("GOMAXPROCS=%d run=%d: persisted model differs from the first run", procs, run)
			}
		}
	}
}
