package core

import (
	"bytes"
	"testing"

	"temporaldoc/internal/featsel"
)

// TestTrainDeterministicAcrossWorkers trains the same corpus with the
// serial engine and with several parallel worker counts and requires the
// persisted models to be byte-identical: the parallel evaluation engine
// must not change a single bit of any trained program, threshold or SOM
// weight.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	c := smallCorpus(t)
	persisted := func(workers int) []byte {
		cfg := fastConfig(featsel.DF)
		cfg.GP.Tournaments = 40
		cfg.Workers = workers
		m, err := Train(cfg, c)
		if err != nil {
			t.Fatalf("Train(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("Save(workers=%d): %v", workers, err)
		}
		return buf.Bytes()
	}
	want := persisted(1)
	for _, workers := range []int{4, 0} {
		if got := persisted(workers); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: persisted model differs from the serial run", workers)
		}
	}
}
