package core

import (
	"sort"
	"strings"
	"testing"
)

func TestModelReport(t *testing.T) {
	m, c := trainedModel(t)
	r := m.Report()
	if r.FeatureMethod != "df" {
		t.Errorf("FeatureMethod = %q", r.FeatureMethod)
	}
	if len(r.Categories) != len(c.Categories) {
		t.Fatalf("report covers %d categories", len(r.Categories))
	}
	if !sort.SliceIsSorted(r.Categories, func(i, j int) bool {
		return r.Categories[i].Category < r.Categories[j].Category
	}) {
		t.Error("report categories unsorted")
	}
	for _, cr := range r.Categories {
		if cr.KeepWords <= 0 {
			t.Errorf("%s: keep words %d", cr.Category, cr.KeepWords)
		}
		if cr.SelectedBMUs <= 0 {
			t.Errorf("%s: selected BMUs %d", cr.Category, cr.SelectedBMUs)
		}
		if cr.RuleLength <= 0 || cr.EffectiveLength > cr.RuleLength {
			t.Errorf("%s: rule %d / effective %d", cr.Category, cr.RuleLength, cr.EffectiveLength)
		}
	}
	if r.CharMapUnits <= 0 || r.WordMapUnits <= 0 {
		t.Errorf("map units: %d / %d", r.CharMapUnits, r.WordMapUnits)
	}
	out := r.Format()
	for _, want := range []string{"earn", "ruleLen", "threshold", "recurrent=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestReportSurvivesPersistence(t *testing.T) {
	m, _ := trainedModel(t)
	var buf strings.Builder
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := m.Report(), loaded.Report()
	if len(a.Categories) != len(b.Categories) {
		t.Fatal("category counts differ")
	}
	for i := range a.Categories {
		if a.Categories[i] != b.Categories[i] {
			t.Errorf("category %d report changed: %+v vs %+v",
				i, a.Categories[i], b.Categories[i])
		}
	}
}
