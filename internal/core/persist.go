package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"temporaldoc/internal/featsel"
	"temporaldoc/internal/hsom"
	"temporaldoc/internal/lgp"
)

// snapshotVersion guards the persisted format.
const snapshotVersion = 1

// categorySnapshot is the serialisable state of one category model.
type categorySnapshot struct {
	Category  string   `json:"category"`
	Code      []uint32 `json:"code"`
	Threshold float64  `json:"threshold"`
	Fitness   float64  `json:"fitness"`
	Restart   int      `json:"restart"`
	Keep      []string `json:"keep"`
}

// modelSnapshot is the serialisable state of a trained model.
type modelSnapshot struct {
	Version        int                `json:"version"`
	FeatureMethod  featsel.Method     `json:"feature_method"`
	FeatureConfig  featsel.Config     `json:"feature_config"`
	GP             lgp.Config         `json:"gp"`
	Restarts       int                `json:"restarts"`
	Seed           int64              `json:"seed"`
	DropMembership bool               `json:"drop_membership,omitempty"`
	Categories     []string           `json:"categories"`
	Encoder        hsom.Snapshot      `json:"encoder"`
	Models         []categorySnapshot `json:"models"`
	Selection      *selectionSnapshot `json:"selection,omitempty"`
}

type selectionSnapshot struct {
	Method      featsel.Method      `json:"method"`
	Global      []string            `json:"global,omitempty"`
	PerCategory map[string][]string `json:"per_category,omitempty"`
}

// Save writes the trained model as JSON. The persisted form contains
// everything needed to classify and trace documents: the hierarchical
// SOM encoder, per-category keep-sets, evolved programs and thresholds.
func (m *Model) Save(w io.Writer) error {
	snap := modelSnapshot{
		Version:        snapshotVersion,
		FeatureMethod:  m.cfg.FeatureMethod,
		FeatureConfig:  m.cfg.FeatureConfig,
		GP:             m.cfg.GP,
		Restarts:       m.cfg.Restarts,
		Seed:           m.cfg.Seed,
		DropMembership: m.cfg.DropMembershipInput,
		Categories:     append([]string(nil), m.cats...),
		Encoder:        m.encoder.Snapshot(),
		Selection: &selectionSnapshot{
			Method:      m.selection.Method,
			Global:      m.selection.Global,
			PerCategory: m.selection.PerCategory,
		},
	}
	for _, cat := range m.cats {
		cm := m.perCat[cat]
		keep := make([]string, 0, len(m.keepSets[cat]))
		for w := range m.keepSets[cat] {
			keep = append(keep, w)
		}
		sort.Strings(keep)
		code := make([]uint32, len(cm.Program.Code))
		for i, in := range cm.Program.Code {
			code[i] = uint32(in)
		}
		snap.Models = append(snap.Models, categorySnapshot{
			Category:  cat,
			Code:      code,
			Threshold: cm.Threshold,
			Fitness:   cm.Fitness,
			Restart:   cm.Restart,
			Keep:      keep,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// Load reconstructs a model persisted with Save.
func Load(r io.Reader) (*Model, error) {
	var snap modelSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: unsupported model version %d (want %d)", snap.Version, snapshotVersion)
	}
	if !featsel.Known(snap.FeatureMethod) {
		return nil, fmt.Errorf("core: snapshot records unknown feature-selection method %q (want one of %v)",
			snap.FeatureMethod, featsel.AllMethods())
	}
	if len(snap.Categories) == 0 || len(snap.Models) != len(snap.Categories) {
		return nil, fmt.Errorf("core: snapshot has %d categories and %d models", len(snap.Categories), len(snap.Models))
	}
	encoder, err := hsom.FromSnapshot(snap.Encoder)
	if err != nil {
		return nil, fmt.Errorf("core: encoder: %w", err)
	}
	m := &Model{
		cfg: Config{
			FeatureMethod:       snap.FeatureMethod,
			FeatureConfig:       snap.FeatureConfig,
			GP:                  snap.GP,
			Restarts:            snap.Restarts,
			Seed:                snap.Seed,
			DropMembershipInput: snap.DropMembership,
		},
		encoder:  encoder,
		keepSets: make(map[string]map[string]bool, len(snap.Models)),
		perCat:   make(map[string]*CategoryModel, len(snap.Models)),
		cats:     append([]string(nil), snap.Categories...),
	}
	if snap.Selection != nil {
		m.selection = &featsel.Selection{
			Method:      snap.Selection.Method,
			Global:      snap.Selection.Global,
			PerCategory: snap.Selection.PerCategory,
		}
	}
	if m.cfg.GP.NumRegisters <= 0 || m.cfg.GP.NumInputs <= 0 {
		return nil, fmt.Errorf("core: snapshot GP config invalid: %+v", m.cfg.GP)
	}
	for _, cs := range snap.Models {
		if encoder.Category(cs.Category) == nil {
			return nil, fmt.Errorf("core: snapshot model %q has no encoder", cs.Category)
		}
		if len(cs.Code) == 0 {
			return nil, fmt.Errorf("core: snapshot model %q has empty program", cs.Category)
		}
		code := make([]lgp.Instruction, len(cs.Code))
		for i, raw := range cs.Code {
			code[i] = lgp.Instruction(raw)
		}
		keep := make(map[string]bool, len(cs.Keep))
		for _, w := range cs.Keep {
			keep[w] = true
		}
		m.keepSets[cs.Category] = keep
		m.perCat[cs.Category] = &CategoryModel{
			Category:  cs.Category,
			Program:   &lgp.Program{Code: code},
			Threshold: cs.Threshold,
			Fitness:   cs.Fitness,
			Restart:   cs.Restart,
		}
	}
	for _, cat := range m.cats {
		if m.perCat[cat] == nil {
			return nil, fmt.Errorf("core: snapshot missing model for category %q", cat)
		}
	}
	return m, nil
}

// SnapshotHeader is the identity-bearing prefix of a persisted model
// snapshot: the fields a registry manifest needs without the cost of
// reconstructing the encoder and per-category programs. The same
// validations Load applies to these fields apply here, so a header
// that reads cleanly names a snapshot Load would at least get past
// format checks on.
type SnapshotHeader struct {
	Version       int            `json:"version"`
	FeatureMethod featsel.Method `json:"feature_method"`
	Categories    []string       `json:"categories"`
}

// ReadSnapshotHeader decodes and validates just the snapshot header.
// It is the cheap publish-time gate of the model registry: format
// version, a known feature-selection method and a non-empty category
// inventory — deep validation (encoder geometry, program bytes)
// still happens on the first real Load.
func ReadSnapshotHeader(r io.Reader) (SnapshotHeader, error) {
	var h SnapshotHeader
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return SnapshotHeader{}, fmt.Errorf("core: decode snapshot header: %w", err)
	}
	if h.Version != snapshotVersion {
		return SnapshotHeader{}, fmt.Errorf("core: unsupported model version %d (want %d)", h.Version, snapshotVersion)
	}
	if !featsel.Known(h.FeatureMethod) {
		return SnapshotHeader{}, fmt.Errorf("core: snapshot records unknown feature-selection method %q (want one of %v)",
			h.FeatureMethod, featsel.AllMethods())
	}
	if len(h.Categories) == 0 {
		return SnapshotHeader{}, fmt.Errorf("core: snapshot header has no categories")
	}
	return h, nil
}

// SnapshotInfo identifies a persisted snapshot file a model was loaded
// from. SHA256 is the hex digest of the exact on-disk bytes, so two
// models compare equal iff their snapshots are byte-identical — the
// serving layer embeds it in every response to prove which model
// scored a request across hot-reloads.
type SnapshotInfo struct {
	Path   string `json:"path"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// LoadFile reconstructs a model from a snapshot file and reports the
// snapshot's identity (content hash and size) alongside it.
func LoadFile(path string) (*Model, SnapshotInfo, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("core: read snapshot: %w", err)
	}
	m, err := Load(bytes.NewReader(b))
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	sum := sha256.Sum256(b)
	return m, SnapshotInfo{
		Path:   path,
		SHA256: hex.EncodeToString(sum[:]),
		Bytes:  int64(len(b)),
	}, nil
}
