package core

import (
	"fmt"
	"sort"

	"temporaldoc/internal/corpus"
)

// CVResult summarises one configuration variant's cross-validation
// performance.
type CVResult struct {
	// Name identifies the variant.
	Name string
	// MeanMacroF1 and MeanMicroF1 average the per-fold scores.
	MeanMacroF1 float64
	MeanMicroF1 float64
	// FoldMacroF1 holds the per-fold macro F1 scores.
	FoldMacroF1 []float64
}

// CrossValidate performs k-fold cross-validation over the corpus
// training split for a set of configuration variants (e.g. different
// feature-selection methods or threshold rules) and returns the results
// sorted by mean macro F1, best first. Folds are assigned round-robin
// over the training documents, so every variant sees identical folds
// and results are paired. The test split is never touched — this is the
// model-selection step that keeps test data honest.
func CrossValidate(base Config, c *corpus.Corpus, k int, variants map[string]func(Config) Config) ([]CVResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: cross-validation needs k >= 2, got %d", k)
	}
	if len(variants) == 0 {
		return nil, fmt.Errorf("core: no variants to cross-validate")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(c.Train) < 2*k {
		return nil, fmt.Errorf("core: %d training documents too few for %d folds", len(c.Train), k)
	}
	names := make([]string, 0, len(variants))
	for name := range variants {
		names = append(names, name)
	}
	sort.Strings(names)

	results := make([]CVResult, 0, len(names))
	for _, name := range names {
		cfg := variants[name](base)
		res := CVResult{Name: name}
		for fold := 0; fold < k; fold++ {
			foldCorpus := &corpus.Corpus{Categories: c.Categories}
			for i := range c.Train {
				if i%k == fold {
					foldCorpus.Test = append(foldCorpus.Test, c.Train[i])
				} else {
					foldCorpus.Train = append(foldCorpus.Train, c.Train[i])
				}
			}
			model, err := Train(cfg, foldCorpus)
			if err != nil {
				return nil, fmt.Errorf("core: variant %s fold %d: %w", name, fold, err)
			}
			set, err := model.Evaluate(foldCorpus.Test)
			if err != nil {
				return nil, fmt.Errorf("core: variant %s fold %d: %w", name, fold, err)
			}
			res.FoldMacroF1 = append(res.FoldMacroF1, set.MacroF1())
			res.MeanMacroF1 += set.MacroF1()
			res.MeanMicroF1 += set.MicroF1()
		}
		res.MeanMacroF1 /= float64(k)
		res.MeanMicroF1 /= float64(k)
		results = append(results, res)
	}
	sort.SliceStable(results, func(i, j int) bool {
		return results[i].MeanMacroF1 > results[j].MeanMacroF1
	})
	return results, nil
}
