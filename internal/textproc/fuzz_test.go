package textproc

import "testing"

// FuzzProcess checks the full pre-processing path never panics and
// always yields clean lower-case tokens.
func FuzzProcess(f *testing.F) {
	f.Add("<TITLE>Wheat</TITLE><BODY>Prices rose 12.5 pct &amp; more</BODY>")
	f.Add("plain text")
	f.Add("<<>><&;&&#;;")
	f.Add("ALL CAPS AND 'QUOTED' words-with-dashes")
	f.Add("")
	pre := NewPreprocessor(Options{})
	f.Fuzz(func(t *testing.T, src string) {
		for _, w := range pre.Process(src) {
			if w == "" {
				t.Fatal("empty token")
			}
			if IsStopWord(w) {
				t.Fatalf("stop word %q survived", w)
			}
			for i := 0; i < len(w); i++ {
				if w[i] < 'a' || w[i] > 'z' {
					t.Fatalf("dirty token %q", w)
				}
			}
		}
	})
}
