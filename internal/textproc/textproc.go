// Package textproc implements the paper's pre-processing stage: removal
// of markup tags and non-textual data, lower-casing, tokenisation into an
// ordered word sequence, and stop-word removal.
//
// Stemming is deliberately NOT performed — the paper relies on the
// second-level SOM to group words sharing a base form (section 4).
package textproc

import (
	"strings"
)

// Options controls pre-processing. The zero value matches the paper:
// strip markup, drop non-alphabetic tokens, lower-case, remove stop words.
type Options struct {
	// KeepStopWords disables stop-word removal.
	KeepStopWords bool
	// MinWordLen drops tokens shorter than this many letters. Zero means 1.
	MinWordLen int
	// MaxWordLen truncates nothing but drops tokens longer than this many
	// letters (noise guard). Zero means no limit.
	MaxWordLen int
	// ExtraStopWords are removed in addition to the embedded list.
	ExtraStopWords []string
}

// Preprocessor turns raw document text into the ordered word sequence the
// rest of the pipeline consumes.
type Preprocessor struct {
	opts Options
	stop map[string]bool
}

// NewPreprocessor builds a Preprocessor for the given options.
func NewPreprocessor(opts Options) *Preprocessor {
	p := &Preprocessor{opts: opts, stop: make(map[string]bool)}
	if !opts.KeepStopWords {
		for _, w := range StopWords() {
			p.stop[w] = true
		}
	}
	for _, w := range opts.ExtraStopWords {
		p.stop[strings.ToLower(w)] = true
	}
	return p
}

// Process converts raw text (possibly containing SGML/HTML-like markup)
// into an ordered, cleaned word sequence.
func (p *Preprocessor) Process(raw string) []string {
	return p.Tokens(StripMarkup(raw))
}

// Tokens tokenises already-markup-free text.
func (p *Preprocessor) Tokens(text string) []string {
	minLen := p.opts.MinWordLen
	if minLen <= 0 {
		minLen = 1
	}
	var out []string
	var cur []byte
	flush := func() {
		if len(cur) < minLen {
			cur = cur[:0]
			return
		}
		if p.opts.MaxWordLen > 0 && len(cur) > p.opts.MaxWordLen {
			cur = cur[:0]
			return
		}
		w := string(cur)
		cur = cur[:0]
		if p.stop[w] {
			return
		}
		out = append(out, w)
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c >= 'a' && c <= 'z':
			cur = append(cur, c)
		case c >= 'A' && c <= 'Z':
			cur = append(cur, c-'A'+'a')
		case c == '\'':
			// Apostrophes split contractions: "company's" -> "company".
			flush()
			// Skip the trailing fragment (s, t, ...) up to next separator.
			for i+1 < len(text) && isLetter(text[i+1]) {
				i++
			}
		default:
			flush()
		}
	}
	flush()
	return out
}

func isLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// StripMarkup removes SGML/HTML-like tags (<TITLE>, </BODY>, ...) and
// character entities (&lt; &#38; ...), replacing each with a space so that
// words on either side of a tag do not fuse.
func StripMarkup(raw string) string {
	var b strings.Builder
	b.Grow(len(raw))
	inTag := false
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		switch {
		case inTag:
			if c == '>' {
				inTag = false
				b.WriteByte(' ')
			}
		case c == '<':
			inTag = true
		case c == '&':
			// Swallow an entity like &amp; or &#123; (bounded scan).
			j := i + 1
			for j < len(raw) && j-i <= 8 && raw[j] != ';' && raw[j] != ' ' && raw[j] != '<' {
				j++
			}
			if j < len(raw) && raw[j] == ';' {
				i = j
				b.WriteByte(' ')
			} else {
				b.WriteByte(' ')
			}
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// IsStopWord reports whether w (case-insensitive) is in the embedded
// stop-word list.
func IsStopWord(w string) bool {
	return stopSet[strings.ToLower(w)]
}

var stopSet = func() map[string]bool {
	m := make(map[string]bool, len(stopWords))
	for _, w := range stopWords {
		m[w] = true
	}
	return m
}()

// StopWords returns a copy of the embedded English stop-word list
// (SMART-derived, standing in for the authors' list at [1]).
func StopWords() []string {
	return append([]string(nil), stopWords...)
}
