package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestStripMarkupTags(t *testing.T) {
	in := "<TITLE>Wheat prices</TITLE><BODY>Exports rose.</BODY>"
	out := StripMarkup(in)
	if strings.ContainsAny(out, "<>") {
		t.Errorf("markup remains: %q", out)
	}
	if !strings.Contains(out, "Wheat prices") || !strings.Contains(out, "Exports rose.") {
		t.Errorf("content lost: %q", out)
	}
}

func TestStripMarkupKeepsWordBoundaries(t *testing.T) {
	out := StripMarkup("end<TAG>start")
	if strings.Contains(out, "endstart") {
		t.Errorf("words fused across tag: %q", out)
	}
}

func TestStripMarkupEntities(t *testing.T) {
	out := StripMarkup("profit &amp; loss &#38; more")
	if strings.Contains(out, "amp") || strings.Contains(out, "#38") {
		t.Errorf("entity remains: %q", out)
	}
	if !strings.Contains(out, "profit") || !strings.Contains(out, "loss") {
		t.Errorf("content lost: %q", out)
	}
}

func TestStripMarkupUnclosedEntity(t *testing.T) {
	// An ampersand not forming an entity must not eat following text.
	out := StripMarkup("AT&T profits")
	if !strings.Contains(out, "profits") {
		t.Errorf("text after bare ampersand lost: %q", out)
	}
}

func TestProcessBasics(t *testing.T) {
	p := NewPreprocessor(Options{})
	got := p.Process("<BODY>The company REPORTED record Profits of 12.5 mln dlrs!</BODY>")
	want := []string{"company", "reported", "record", "profits", "mln", "dlrs"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Process = %v, want %v", got, want)
	}
}

func TestProcessRemovesDigitsAndSigns(t *testing.T) {
	p := NewPreprocessor(Options{})
	got := p.Tokens("q1 2024 $5.3% rate-hike")
	// "q" survives from q1 (letters only), digits and signs dropped.
	for _, w := range got {
		for i := 0; i < len(w); i++ {
			if w[i] < 'a' || w[i] > 'z' {
				t.Fatalf("token %q contains non-letter", w)
			}
		}
	}
}

func TestProcessStopWords(t *testing.T) {
	p := NewPreprocessor(Options{})
	got := p.Tokens("the bank and the rate")
	want := []string{"bank", "rate"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stop words kept: %v", got)
	}
	keep := NewPreprocessor(Options{KeepStopWords: true})
	got = keep.Tokens("the bank")
	if !reflect.DeepEqual(got, []string{"the", "bank"}) {
		t.Errorf("KeepStopWords dropped them anyway: %v", got)
	}
}

func TestProcessExtraStopWords(t *testing.T) {
	p := NewPreprocessor(Options{ExtraStopWords: []string{"Bank"}})
	got := p.Tokens("the bank raised rates")
	want := []string{"raised", "rates"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("extra stop word kept: %v", got)
	}
}

func TestProcessOrderPreserved(t *testing.T) {
	p := NewPreprocessor(Options{KeepStopWords: true})
	got := p.Tokens("zulu alpha kilo alpha")
	want := []string{"zulu", "alpha", "kilo", "alpha"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order changed: %v", got)
	}
}

func TestProcessContractions(t *testing.T) {
	p := NewPreprocessor(Options{KeepStopWords: true})
	got := p.Tokens("company's results weren't bad")
	want := []string{"company", "results", "weren", "bad"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("contractions: %v, want %v", got, want)
	}
}

func TestMinMaxWordLen(t *testing.T) {
	p := NewPreprocessor(Options{KeepStopWords: true, MinWordLen: 3, MaxWordLen: 5})
	got := p.Tokens("ab abc abcdef abcde")
	want := []string{"abc", "abcde"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("length bounds: %v, want %v", got, want)
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "The", "AND", "of"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false", w)
		}
	}
	for _, w := range []string{"wheat", "profit", ""} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true", w)
		}
	}
}

func TestStopWordsCopy(t *testing.T) {
	a := StopWords()
	a[0] = "mutated"
	if b := StopWords(); b[0] == "mutated" {
		t.Error("StopWords exposes internal slice")
	}
}

// Property: tokens are always lower-case ASCII letters and never stop
// words (with default options).
func TestTokensProperty(t *testing.T) {
	p := NewPreprocessor(Options{})
	f := func(s string) bool {
		for _, w := range p.Tokens(s) {
			if w == "" || IsStopWord(w) {
				return false
			}
			for i := 0; i < len(w); i++ {
				if w[i] < 'a' || w[i] > 'z' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: StripMarkup output never contains '<' from a well-formed tag
// region and is never longer than its input.
func TestStripMarkupProperty(t *testing.T) {
	f := func(s string) bool {
		return len(StripMarkup(s)) <= len(s)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
