module temporaldoc

go 1.22
