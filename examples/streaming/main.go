// Streaming classification: the online form of the paper's word
// tracking. A trained model is wrapped in a Stream that consumes words
// one at a time — register state persists across the stream, exactly as
// inside the RLGP — so a live feed can be classified and tracked without
// ever materialising whole documents.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"temporaldoc"
)

func main() {
	corpus, err := temporaldoc.GenerateReutersLike(temporaldoc.GenConfig{
		Scale: 0.015,
		Seed:  13,
	})
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}
	cfg := temporaldoc.FastConfig(temporaldoc.MI)
	cfg.GP.Tournaments = 600
	model, err := temporaldoc.Train(cfg, corpus)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	// Simulate a live feed: three documents arrive word by word,
	// separated by document boundaries.
	stream, err := model.NewStream("earn", "crude", "grain")
	if err != nil {
		log.Fatalf("stream: %v", err)
	}
	for n, doc := range corpus.Test[:3] {
		stream.Reset() // document boundary
		fmt.Printf("=== document %s (true labels %v) ===\n", doc.ID, doc.Categories)
		events := 0
		for _, word := range doc.Words {
			changed, err := stream.Push(word)
			if err != nil {
				log.Fatalf("push: %v", err)
			}
			// Report only state *changes* (a monitoring UI would do the
			// same): a classifier crossing its threshold.
			for cat, st := range changed {
				if events < 8 { // keep the demo short
					fmt.Printf("  word %3d %-12s -> %-6s output %+.3f in-class=%v\n",
						stream.Words(), word, cat, st.Output, st.InClass)
				}
				events++
				_ = cat
			}
		}
		final := stream.State()
		fmt.Printf("  final states after %d words:\n", stream.Words())
		for _, cat := range []string{"earn", "crude", "grain"} {
			st := final[cat]
			verdict := "out"
			if st.InClass {
				verdict = "IN"
			}
			fmt.Printf("    %-6s %-3s (output %+.3f, %d member words)\n",
				cat, verdict, st.Output, st.Members)
		}
		if n == 2 {
			break
		}
	}
}
