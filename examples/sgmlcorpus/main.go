// SGML corpus loading: the real-data path. If you have the Reuters-21578
// distribution, pass its reut2-*.sgm files on the command line; without
// arguments the example writes a small synthetic corpus to SGML first and
// loads it back, exercising the identical parser and ModApte split
// discipline either way.
//
//	go run ./examples/sgmlcorpus                  # self-contained
//	go run ./examples/sgmlcorpus reut2-0*.sgm     # real Reuters-21578
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"temporaldoc"
)

func main() {
	var readers []io.Reader
	var closers []io.Closer
	if len(os.Args) > 1 {
		for _, path := range os.Args[1:] {
			f, err := os.Open(path)
			if err != nil {
				log.Fatalf("open %s: %v", path, err)
			}
			readers = append(readers, f)
			closers = append(closers, f)
		}
		fmt.Printf("loading %d SGML files...\n", len(readers))
	} else {
		// Self-contained mode: render a synthetic corpus to SGML text.
		sgml := renderSyntheticSGML()
		readers = append(readers, strings.NewReader(sgml))
		fmt.Println("no files given; loading a synthetic SGML corpus")
	}
	defer func() {
		for _, c := range closers {
			_ = c.Close() // read-only inputs; nothing to lose on close
		}
	}()

	corpus, err := temporaldoc.LoadReutersSGML(temporaldoc.ReutersTop10(), readers...)
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Printf("loaded %d train / %d test documents\n", len(corpus.Train), len(corpus.Test))
	for _, cat := range corpus.Categories {
		counts := corpus.CategoryCounts()[cat]
		fmt.Printf("  %-10s %4d train / %4d test\n", cat, counts[0], counts[1])
	}

	cfg := temporaldoc.FastConfig(temporaldoc.DF)
	cfg.GP.Tournaments = 400
	model, err := temporaldoc.Train(cfg, corpus)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	set, err := model.Evaluate(corpus.Test)
	if err != nil {
		log.Fatalf("evaluate: %v", err)
	}
	fmt.Printf("\nmacro F1 = %.2f, micro F1 = %.2f\n", set.MacroF1(), set.MicroF1())
}

// renderSyntheticSGML produces SGML text for the self-contained mode by
// generating a corpus and writing it through the same renderer the tdc
// CLI uses.
func renderSyntheticSGML() string {
	c, err := temporaldoc.GenerateReutersLike(temporaldoc.GenConfig{Scale: 0.01, Seed: 5})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	var b strings.Builder
	if err := temporaldoc.RenderSGML(&b, c, 5); err != nil {
		log.Fatalf("render: %v", err)
	}
	return b.String()
}
