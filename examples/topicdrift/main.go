// Topic drift detection: the paper's conclusion proposes the system for
// Topic Detection and Tracking (TDT). This example builds a synthetic
// "news stream" document that drifts from one topic to another halfway
// through, and uses the per-word output register of each classifier to
// locate the drift point — no segmentation supervision involved.
//
//	go run ./examples/topicdrift
package main

import (
	"fmt"
	"log"

	"temporaldoc"
)

func main() {
	corpus, err := temporaldoc.GenerateReutersLike(temporaldoc.GenConfig{
		Scale: 0.015,
		Seed:  21,
	})
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}

	// MI selects features per category, so the earn and crude classifiers
	// each keep their own topical vocabulary along the stream.
	cfg := temporaldoc.FastConfig(temporaldoc.MI)
	cfg.GP.Tournaments = 600
	model, err := temporaldoc.Train(cfg, corpus)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	// Splice a drifting document: the first half of an earn story
	// followed by the second half of a crude story.
	earnDoc := firstSingleLabel(corpus, "earn")
	crudeDoc := firstSingleLabel(corpus, "crude")
	if earnDoc == nil || crudeDoc == nil {
		log.Fatal("missing source documents")
	}
	drift := temporaldoc.Document{
		ID:    "stream-drift-1",
		Words: append(append([]string{}, earnDoc.Words[:len(earnDoc.Words)/2]...), crudeDoc.Words[len(crudeDoc.Words)/2:]...),
	}
	fmt.Printf("spliced stream: %d words (earn first half + crude second half)\n\n", len(drift.Words))

	// Run both classifiers over the stream and locate where each one's
	// output crosses its threshold.
	for _, cat := range []string{"earn", "crude"} {
		trace, err := model.Trace(cat, &drift)
		if err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("classifier %q over the stream (%d member words):\n", cat, len(trace))
		prev := false
		for i, p := range trace {
			if p.InClass != prev {
				state := "OFF -> ON"
				if !p.InClass {
					state = "ON -> OFF"
				}
				fmt.Printf("  switch %s at member word %d (%q), output %+.3f\n",
					state, i+1, p.Word, p.Output)
				prev = p.InClass
			}
		}
		if len(trace) > 0 {
			fmt.Printf("  final: output %+.3f, in-class=%v\n\n",
				trace[len(trace)-1].Output, trace[len(trace)-1].InClass)
		} else {
			fmt.Printf("  (no member words)\n\n")
		}
	}

	// A simple drift detector: the earn classifier's in-class fraction
	// over a sliding window of member words.
	trace, err := model.Trace("earn", &drift)
	if err != nil {
		log.Fatal(err)
	}
	const window = 5
	fmt.Println("earn in-class fraction over a sliding window of member words:")
	for i := 0; i+window <= len(trace); i += window {
		in := 0
		for _, p := range trace[i : i+window] {
			if p.InClass {
				in++
			}
		}
		fmt.Printf("  words %2d-%2d: %.0f%%\n", i+1, i+window, 100*float64(in)/window)
	}

	// The library's TDT detector packages this analysis: topical
	// segments and drift events with no segmentation supervision.
	detector, err := temporaldoc.NewDriftDetector(model, temporaldoc.DriftConfig{
		Categories: []string{"earn", "crude"},
	})
	if err != nil {
		log.Fatalf("detector: %v", err)
	}
	segs, err := detector.Segments(&drift)
	if err != nil {
		log.Fatalf("segments: %v", err)
	}
	fmt.Println("\ndetected topical segments:")
	for _, s := range segs {
		fmt.Printf("  %-8s words %3d-%3d  confidence %+.2f (%d member words)\n",
			s.Category, s.StartWord, s.EndWord, s.Confidence, s.MemberWords)
	}
	drifts, err := detector.Drifts(&drift)
	if err != nil {
		log.Fatalf("drifts: %v", err)
	}
	fmt.Println("\ndetected topic drifts:")
	for _, d := range drifts {
		from := d.From
		if from == "" {
			from = "(start)"
		}
		fmt.Printf("  at word %3d: %s -> %s\n", d.WordIndex, from, d.To)
	}
}

func firstSingleLabel(c *temporaldoc.Corpus, cat string) *temporaldoc.Document {
	for i := range c.Test {
		d := &c.Test[i]
		if len(d.Categories) == 1 && d.Categories[0] == cat && len(d.Words) >= 20 {
			return d
		}
	}
	return nil
}
