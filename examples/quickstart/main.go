// Quickstart: generate a small Reuters-like corpus, train the temporal
// classifier, classify a test document and report per-category F1.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"temporaldoc"
)

func main() {
	// A 1.5%-scale corpus keeps the example under a minute.
	corpus, err := temporaldoc.GenerateReutersLike(temporaldoc.GenConfig{
		Scale: 0.015,
		Seed:  1,
	})
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}
	fmt.Printf("corpus: %d train / %d test documents, categories %v\n",
		len(corpus.Train), len(corpus.Test), corpus.Categories)

	// FastConfig keeps the paper's architecture (7x13 character SOM,
	// 8x8 word SOMs, RLGP classifiers) with a reduced GP budget.
	cfg := temporaldoc.FastConfig(temporaldoc.DF)
	cfg.GP.Tournaments = 600 // trimmed further for the example

	model, err := temporaldoc.Train(cfg, corpus)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	// Classify one test document: the model runs it through all ten
	// binary classifiers in parallel, so multi-label documents receive
	// multiple categories.
	doc := &corpus.Test[0]
	labels, err := model.Classify(doc)
	if err != nil {
		log.Fatalf("classify: %v", err)
	}
	fmt.Printf("\ndocument %s\n  true labels:      %v\n  predicted labels: %v\n",
		doc.ID, doc.Categories, labels)

	// The evolved rule for a category is a short register program, as in
	// the paper's section 8.1 example.
	rule, err := model.Rule("earn")
	if err != nil {
		log.Fatalf("rule: %v", err)
	}
	fmt.Printf("\nevolved rule for 'earn':\n  %s\n", rule)

	// Full test-set evaluation.
	set, err := model.Evaluate(corpus.Test)
	if err != nil {
		log.Fatalf("evaluate: %v", err)
	}
	fmt.Printf("\n%-12s %6s %6s %6s\n", "category", "R", "P", "F1")
	for _, cat := range corpus.Categories {
		t := set.Table(cat)
		fmt.Printf("%-12s %6.2f %6.2f %6.2f\n", cat, t.Recall(), t.Precision(), t.F1())
	}
	fmt.Printf("macro F1 = %.2f, micro F1 = %.2f\n", set.MacroF1(), set.MicroF1())
}
