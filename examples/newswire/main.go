// Newswire word tracking: reproduce the paper's Figure 6 scenario — a
// multi-label document (e.g. grain + wheat + trade) is run through each
// of its category classifiers in parallel, and the output register is
// inspected after every word to watch the context change through the
// document.
//
//	go run ./examples/newswire
package main

import (
	"fmt"
	"log"
	"strings"

	"temporaldoc"
)

func main() {
	corpus, err := temporaldoc.GenerateReutersLike(temporaldoc.GenConfig{
		Scale: 0.015,
		Seed:  7,
	})
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}

	cfg := temporaldoc.FastConfig(temporaldoc.MI) // Figure 6 uses MI features
	cfg.GP.Tournaments = 600
	model, err := temporaldoc.Train(cfg, corpus)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	// Find a test document with three labels (grain + wheat + trade in
	// the synthetic corpus), falling back to any multi-label document.
	var doc *temporaldoc.Document
	for i := range corpus.Test {
		if len(corpus.Test[i].Categories) >= 3 {
			doc = &corpus.Test[i]
			break
		}
	}
	if doc == nil {
		for i := range corpus.Test {
			if len(corpus.Test[i].Categories) >= 2 {
				doc = &corpus.Test[i]
				break
			}
		}
	}
	if doc == nil {
		log.Fatal("no multi-label test document found")
	}
	fmt.Printf("document %s, labels %v, %d words\n\n", doc.ID, doc.Categories, len(doc.Words))

	// Trace the document through each of its true-label classifiers.
	for _, cat := range doc.Categories {
		trace, err := model.Trace(cat, doc)
		if err != nil {
			log.Fatalf("trace %s: %v", cat, err)
		}
		fmt.Printf("classifier %q (%d member words):\n", cat, len(trace))
		var inWords []string
		for _, p := range trace {
			if p.InClass {
				inWords = append(inWords, p.Word)
			}
		}
		fmt.Printf("  words driving the output in-class: %s\n",
			strings.Join(dedupe(inWords), " "))
		if len(trace) > 0 {
			fmt.Printf("  final output %+.3f\n\n", trace[len(trace)-1].Output)
		} else {
			fmt.Printf("  (no member words)\n\n")
		}
	}

	// Show where each classifier "switches on" along the document — the
	// context-change view of Figure 6.
	fmt.Println("per-word in-class markers (columns = document's categories):")
	traces := map[string][]temporaldoc.TracePoint{}
	longest := 0
	for _, cat := range doc.Categories {
		tr, err := model.Trace(cat, doc)
		if err != nil {
			log.Fatal(err)
		}
		traces[cat] = tr
		if len(tr) > longest {
			longest = len(tr)
		}
	}
	header := "  word            "
	for _, cat := range doc.Categories {
		header += fmt.Sprintf(" %-9s", cat)
	}
	fmt.Println(header)
	// Member-word streams differ per category; display the first
	// category's word stream with each classifier's state where defined.
	ref := traces[doc.Categories[0]]
	for i := 0; i < len(ref) && i < 30; i++ {
		line := fmt.Sprintf("  %-15s", ref[i].Word)
		for _, cat := range doc.Categories {
			tr := traces[cat]
			mark := "    .    "
			if i < len(tr) && tr[i].InClass {
				mark = "    #    "
			}
			line += fmt.Sprintf(" %-9s", strings.TrimRight(mark, " "))
		}
		fmt.Println(line)
	}
}

func dedupe(ws []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range ws {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	if len(out) > 12 {
		out = out[:12]
	}
	return out
}
