GO ?= go

.PHONY: all build vet lint lint-self lint-warm lint-baseline test race race-serve bench bench-encode bench-serve encode-smoke telemetry-smoke fuzz-smoke serve-smoke registry-smoke loadgen-smoke fmt-check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tdlint is the repository's domain-specific static-analysis gate
# (DESIGN.md §7, §8, §12, §13): fifteen analyzers covering determinism,
# float-comparison hygiene, telemetry discipline, flush-error handling,
# goroutine-spawn patterns, enum exhaustiveness, cross-package purity,
# seed provenance, lock/channel discipline, and the serving layer's
# concurrency contracts (atomic access models, snapshot pin-once,
# goroutine termination, context flow). Findings subtract
# tdlint.baseline; keep it empty.
#
# The run is incremental: results are content-addressed per (package,
# analyzer) in os.UserCacheDir()/tdlint (DESIGN.md §13), so warm runs
# only re-analyze what changed. This one invocation covers what used to
# be a separate lint-self pass — the full suite runs over ./...,
# internal/analysis included, and the engine eats its own dog food.
lint:
	$(GO) run ./cmd/tdlint ./...

# Historical alias: the self-lint of the analysis engine is part of
# `lint` now that the cache makes one full-suite invocation cheap.
lint-self: lint

# Asserts the incremental cache actually bites: a warm run must report
# zero misses and be at least 5x faster than a cold one, with findings
# byte-identical cached vs. uncached and across -jobs values.
lint-warm:
	./scripts/lint_warm_smoke.sh

# Regenerate the grandfathered-findings baseline. Prefer fixing
# findings over baselining them; an empty baseline means a clean tree,
# and this target refuses to leave it otherwise. Set ALLOW_BASELINE=1
# to deliberately grandfather findings (say why in the commit message).
lint-baseline:
	$(GO) run ./cmd/tdlint -write-baseline ./...
	@if grep -v '^#' tdlint.baseline | grep -q .; then \
		if [ "$$ALLOW_BASELINE" = "1" ]; then \
			echo "lint-baseline: WARNING: baseline is non-empty (ALLOW_BASELINE=1 set)"; \
		else \
			echo "lint-baseline: baseline is non-empty; fix the findings instead, or re-run with ALLOW_BASELINE=1:"; \
			grep -v '^#' tdlint.baseline; \
			exit 1; \
		fi; \
	fi

test:
	$(GO) test -vet=all ./...

# The race detector is the backstop for the parallel evaluation engine
# (SOM batch BMU search, GP tournament evaluation, encode/machine
# caches): any unsynchronised access introduced later fails here.
race:
	$(GO) test -race ./...

# Dedicated race gate for the serving layer: the reload-under-load test
# (TestReloadUnderLoad) hammers /v1/classify from many goroutines while
# snapshots hot-swap, the registry wall proves single-flight loading and
# LRU eviction under contention (TestAcquireSingleFlightStampede,
# TestLRUEvictionOrder), and core's ClassifyDoc must stay safe under the
# same concurrency. Kept separate from `race` so the serve wall stays a
# named, required CI step even if the global race target is trimmed.
race-serve:
	$(GO) test -race -count=1 ./internal/serve/ ./internal/core/ ./internal/registry/

# Short benchmark smoke over the evaluation-engine hot paths. Catches
# benchmarks that stop compiling or panic; not a performance gate.
bench:
	$(GO) test -run '^$$' -bench '^Benchmark(BMU|TrainEpoch|Tournament|RunSequence|ModelScore)' -benchtime 10x \
		./internal/som/ ./internal/lgp/ .

# Encode-kernel benchmarks with allocation reporting: the sparse/dense
# level-2 BMU sweep, the cold-word path (fanout table vs legacy live
# search) and full-document encoding per kernel — the numbers recorded
# in BENCH_PR6.json.
bench-encode:
	$(GO) test -run '^$$' -bench '^Benchmark(BMUSparse|WordVectorCold|EncodeDocument)' -benchmem \
		./internal/som/ ./internal/hsom/

# Encode bench smoke: fails the build if a //tdlint:hotpath encode
# kernel ever allocates. TestSparseKernelZeroAlloc and
# TestEncodeKernelsZeroAlloc assert AllocsPerRun == 0 over the sparse
# BMU sweeps (both precisions), the warm word-cache lookup and the
# sparse Gaussian evaluation (same shape as telemetry-smoke).
encode-smoke:
	$(GO) test -run 'TestSparseKernelZeroAlloc' -count=1 ./internal/som/
	$(GO) test -run 'TestEncodeKernelsZeroAlloc' -count=1 ./internal/hsom/

# Telemetry bench smoke: fails the build if the disabled telemetry path
# ever allocates. TestDisabledPathZeroAlloc asserts AllocsPerRun == 0
# over every no-op metric call, and BenchmarkDisabledNoop keeps the
# compiled no-op path exercised.
telemetry-smoke:
	$(GO) test -run 'TestDisabledPathZeroAlloc' -bench 'BenchmarkDisabledNoop' -benchtime 100x \
		./internal/telemetry/

# Short fuzz smoke over the parsing and numeric kernels: the SGML
# corpus reader, the LGP program decoder and interpreter, and the text
# normaliser. ~10s per target — enough to catch regressions in input
# handling, not a soak. Go allows one -fuzz pattern per run, hence one
# invocation per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseSGML$$' -fuzztime 10s ./internal/reuters/
	$(GO) test -run '^$$' -fuzz '^FuzzParseProgram$$' -fuzztime 10s ./internal/lgp/
	$(GO) test -run '^$$' -fuzz '^FuzzMachineStep$$' -fuzztime 10s ./internal/lgp/
	$(GO) test -run '^$$' -fuzz '^FuzzProcess$$' -fuzztime 10s ./internal/textproc/
	$(GO) test -run '^$$' -fuzz '^FuzzClassifyRequest$$' -fuzztime 10s ./internal/serve/
	$(GO) test -run '^$$' -fuzz '^FuzzManifest$$' -fuzztime 10s ./internal/registry/

# End-to-end smoke of `tdc serve`: train a tiny model, boot the server
# on an ephemeral port, drive classify/healthz/modelz/reload over curl
# and assert the JSON fields scripts depend on.
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end smoke of the model registry: train two models, `tdc
# publish` them as tenants, serve from `-models-dir`, assert per-tenant
# routing/hashes, the /v1/models catalog, immutable republish rejection,
# and that a third publish becomes visible via a /v1/reload rescan.
registry-smoke:
	./scripts/registry_smoke.sh

# Loadgen smoke: a short closed-loop soak of `tdc loadgen` against an
# in-process server (TestLoadgenSoak + the open-loop variant) asserting
# zero 5xx and client/server statz agreement on counts and percentiles.
# Also re-runs the stage-trace zero-alloc gate, since loadgen's numbers
# are only honest if tracing stays off the allocation books.
loadgen-smoke:
	$(GO) test -run 'TestLoadgen' -count=1 ./internal/loadgen/
	$(GO) test -run 'TestStageTraceZeroAllocWhenNotSampling' -count=1 ./internal/telemetry/

# The serving benchmark: boots `tdc serve`, drives it with `tdc loadgen`
# in closed and open mode and writes BENCH_PR7.json (client + server
# percentiles, throughput, shed/timeout rates, agreement verdicts).
bench-serve:
	./scripts/bench_serve.sh

# Fails when any tracked Go file is not gofmt-formatted.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet lint lint-warm build test race race-serve bench telemetry-smoke encode-smoke fuzz-smoke serve-smoke registry-smoke loadgen-smoke
