GO ?= go

.PHONY: all build vet lint lint-baseline test race bench telemetry-smoke fmt-check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# tdlint is the repository's domain-specific static-analysis gate
# (DESIGN.md §7): determinism, float-comparison hygiene, telemetry
# discipline, flush-error handling, goroutine-spawn patterns and enum
# exhaustiveness. Findings subtract tdlint.baseline; keep it empty.
lint:
	$(GO) run ./cmd/tdlint ./...

# Regenerate the grandfathered-findings baseline. Prefer fixing
# findings over baselining them; an empty baseline means a clean tree.
lint-baseline:
	$(GO) run ./cmd/tdlint -write-baseline ./...

test:
	$(GO) test -vet=all ./...

# The race detector is the backstop for the parallel evaluation engine
# (SOM batch BMU search, GP tournament evaluation, encode/machine
# caches): any unsynchronised access introduced later fails here.
race:
	$(GO) test -race ./...

# Short benchmark smoke over the evaluation-engine hot paths. Catches
# benchmarks that stop compiling or panic; not a performance gate.
bench:
	$(GO) test -run '^$$' -bench '^Benchmark(BMU|TrainEpoch|Tournament|RunSequence|ModelScore)' -benchtime 10x \
		./internal/som/ ./internal/lgp/ .

# Telemetry bench smoke: fails the build if the disabled telemetry path
# ever allocates. TestDisabledPathZeroAlloc asserts AllocsPerRun == 0
# over every no-op metric call, and BenchmarkDisabledNoop keeps the
# compiled no-op path exercised.
telemetry-smoke:
	$(GO) test -run 'TestDisabledPathZeroAlloc' -bench 'BenchmarkDisabledNoop' -benchtime 100x \
		./internal/telemetry/

# Fails when any tracked Go file is not gofmt-formatted.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet lint build test race bench telemetry-smoke
